// TraceReplayDriver: open-loop replay of a TraceCursor into a simulator.
//
// The driver walks the cursor in trace order and fires a dispatch callback
// at each event's (rate-scaled) arrival time — open loop: arrivals never
// wait for completions, exactly how production load hits a store. The
// harness installs a dispatch that issues a client Get through the full
// client -> kv -> OS stack; tests install counting sinks.
//
// Determinism & sharding: in a sharded world every shard runs its own
// driver over its own cursor, and each driver claims the deterministic
// subset `stream % num_shards == shard` — the arrival partition is a pure
// function of the trace, decided in trace order, never of worker count or
// hardware, so scorecards are bit-identical at any MITT_TRIAL_WORKERS x
// MITT_INTRA_WORKERS (same contract as harness::RunTrials and
// sim::ShardedEngine). Warmup accounting uses the *global* record index
// (each driver scans every record while claiming its own), so the
// measured/unmeasured split is also partition-independent.
//
// Hot loop = cursor advance + one ScheduleAt + the dispatch call. The
// closure captures only `this` (inside InlineFunction's SBO) and the cursor
// reuses its block scratch, so the steady state performs zero heap
// allocations (gated by tests/alloc_test.cc).

#ifndef MITTOS_TRACE_REPLAY_H_
#define MITTOS_TRACE_REPLAY_H_

#include <functional>

#include "src/sim/simulator.h"
#include "src/trace/cursor.h"

namespace mitt::trace {

class TraceReplayDriver {
 public:
  struct Options {
    // Arrival compression: event fires at at / rate_scale (>1 = denser).
    double rate_scale = 1.0;
    // Stop after this many *global* records (0 = whole trace). Applies
    // before partitioning so every shard agrees where the trace ends.
    uint64_t max_events = 0;
    // First `warmup_events` global records are dispatched unmeasured.
    uint64_t warmup_events = 0;
    // This driver's partition: claims records with stream % num_shards ==
    // shard. Defaults cover the whole trace.
    int shard = 0;
    int num_shards = 1;
  };

  // `measured` is false for the global warmup prefix. `global_index` is the
  // record's position in the full trace (0-based), identical across shards.
  using DispatchFn =
      std::function<void(const TraceEvent& event, uint64_t global_index, bool measured)>;

  TraceReplayDriver(sim::Simulator* sim, TraceCursor* cursor, const Options& options,
                    DispatchFn dispatch);

  // Schedules the first owned arrival. No-op on an empty (or fully foreign)
  // partition — done() is immediately true.
  void Start();

  // True once every owned arrival has been dispatched. Completions are the
  // dispatcher's business (open loop): drive the sim until done() AND your
  // own completion count catches up.
  bool done() const { return done_; }

  uint64_t dispatched() const { return dispatched_; }
  uint64_t reads_dispatched() const { return reads_; }
  uint64_t writes_dispatched() const { return writes_; }

 private:
  // Advances the cursor to this shard's next record and schedules it;
  // flips done_ when the cursor (or max_events) runs out.
  void PumpNext();
  void Fire();

  TimeNs ScaledArrival(TimeNs at) const {
    return rate_scale_ == 1.0
               ? at
               : static_cast<TimeNs>(static_cast<double>(at) / rate_scale_);
  }

  sim::Simulator* sim_;
  TraceCursor* cursor_;
  Options options_;
  DispatchFn dispatch_;
  double rate_scale_ = 1.0;

  TraceEvent pending_{};
  uint64_t pending_index_ = 0;
  uint64_t scanned_ = 0;  // Global records consumed from the cursor.
  uint64_t dispatched_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_REPLAY_H_
