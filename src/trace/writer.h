// Streaming writer for the mitt::trace columnar format (see format.h).
//
// Append() buffers one block's worth of records in column scratch arrays and
// writes a packed block whenever the scratch fills, so writing a
// 100M-record trace holds one block (~100 KB) plus the growing 16 B/block
// index in memory. Finish() appends the index and footer, then rewrites the
// header in place with the final counts — the output file is invalid until
// Finish() succeeds, and validation (TraceCursor::Open) will say so.

#ifndef MITTOS_TRACE_WRITER_H_
#define MITTOS_TRACE_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/format.h"

namespace mitt::trace {

class TraceWriter {
 public:
  struct Options {
    uint32_t block_records = kDefaultBlockRecords;
    // Recorded in the header for importers that remapped the address space;
    // 0 = derive from the largest offset+len seen.
    int64_t span_bytes = 0;
  };

  // Creates/truncates `path`. Returns nullptr and sets *error on failure.
  static std::unique_ptr<TraceWriter> Open(const std::string& path, const Options& options,
                                           std::string* error);

  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Appends one record. Arrivals must be non-decreasing after quantization
  // to microseconds (the format invariant); violations and IO errors return
  // false and latch error(). Sub-microsecond precision is truncated.
  bool Append(const TraceEvent& event);

  // Flushes the last partial block, writes index + footer, rewrites the
  // header, and closes the file. Idempotent; returns false on IO error (or
  // if a previous Append failed).
  bool Finish();

  uint64_t records_written() const { return header_.record_count; }
  uint64_t last_arrival_us() const { return last_arrival_us_; }
  uint32_t streams_seen() const { return header_.num_streams; }
  const std::string& error() const { return error_; }

 private:
  TraceWriter(std::FILE* file, const Options& options);

  bool FlushBlock();
  bool Fail(const std::string& message);

  std::FILE* file_ = nullptr;
  TraceHeader header_;
  Options options_;
  std::string error_;
  bool finished_ = false;

  uint64_t last_arrival_us_ = 0;
  int64_t max_extent_ = 0;     // Largest offset+len appended.
  uint32_t max_stream_ = 0;
  bool any_record_ = false;

  // Current block, struct-of-arrays; flushed through encode_buf_.
  std::vector<uint64_t> arrival_us_;
  std::vector<int64_t> offset_;
  std::vector<uint32_t> len_;
  std::vector<uint8_t> op_;
  std::vector<uint32_t> stream_;
  std::vector<unsigned char> encode_buf_;

  std::vector<BlockIndexEntry> index_;
};

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_WRITER_H_
