// Importers: public block-trace CSVs -> the mitt::trace columnar format.
//
// Target format is the MSR Cambridge / SNIA IOTTA block-trace CSV layout:
//
//   Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//   128166372003061629,usr,0,Read,383496192,32768,1331
//
// Timestamps are Windows FILETIME ticks (100 ns since 1601) in the MSR
// releases; some SNIA exports use fractional seconds instead. The importer
// detects which by magnitude (ticks are ~1.28e17; no trace is several
// thousand years long) and normalizes both to microseconds.
//
// Import-time transforms, in order:
//   1. time-rebasing:   first arrival -> t=0 (traces start at wall-clock).
//   2. rate-scaling:    arrival /= rate_scale (>1 compresses, the paper's
//                       128x SSD re-rate; <1 slows a trace a single spindle
//                       can absorb).
//   3. address remap:   offset folded onto [0, remap_span_bytes) so any
//                       trace lands inside the DocStore keyspace span.
//   4. stream mapping:  (hostname, disk) pairs -> dense stream ids in first-
//                       appearance order (per-tenant identity survives).
//
// Lines that fail to parse are counted, not fatal (real SNIA files carry
// headers and ragged tails); arrivals that regress after quantization are
// clamped to the previous arrival so the output honors the format's
// monotonicity invariant (MSR traces are sorted, but not strictly).

#ifndef MITTOS_TRACE_IMPORT_H_
#define MITTOS_TRACE_IMPORT_H_

#include <istream>
#include <string>

#include "src/trace/writer.h"

namespace mitt::trace {

struct CsvImportOptions {
  double rate_scale = 1.0;        // >1 compresses arrivals.
  bool rebase_time = true;        // Subtract the first arrival.
  int64_t remap_span_bytes = 0;   // >0: fold offsets onto [0, span).
  uint64_t max_records = 0;       // 0 = import everything.
};

struct ImportStats {
  uint64_t lines = 0;            // Input lines seen.
  uint64_t imported = 0;         // Records written.
  uint64_t skipped_malformed = 0;
  uint64_t clamped_unsorted = 0; // Arrivals clamped to keep monotonicity.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint32_t streams = 0;          // Distinct (hostname, disk) pairs.
  uint64_t span_us = 0;          // Last arrival after rebase + scale.
};

// Streams `in` through the transforms into `writer` (caller still owns
// Finish()). Returns false and sets *error only on structural failure (an
// unwritable output, or zero parseable records).
bool ImportBlockCsv(std::istream& in, TraceWriter* writer, const CsvImportOptions& options,
                    ImportStats* stats, std::string* error);

// Convenience: open csv_path, import, Finish() the writer it creates at
// out_path.
bool ImportBlockCsvFile(const std::string& csv_path, const std::string& out_path,
                        const CsvImportOptions& options, ImportStats* stats,
                        std::string* error);

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_IMPORT_H_
