#include "src/trace/cursor.h"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define MITT_TRACE_HAS_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace mitt::trace {
namespace {

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// Decodes and sanity-checks the 64-byte header.
bool DecodeHeader(const unsigned char buf[kHeaderBytes], TraceHeader* out, std::string* error) {
  if (LoadLe64(buf) != kTraceMagic) {
    return SetError(error, "bad magic (not a mitt trace, or a torn/unfinished write)");
  }
  out->version = LoadLe32(buf + 8);
  if (out->version != kTraceVersion) {
    return SetError(error, "unsupported version");
  }
  if (LoadLe32(buf + 12) != kHeaderBytes) {
    return SetError(error, "unexpected header size");
  }
  out->block_records = LoadLe32(buf + 16);
  out->num_streams = LoadLe32(buf + 20);
  out->record_count = LoadLe64(buf + 24);
  out->span_bytes = static_cast<int64_t>(LoadLe64(buf + 32));
  out->num_blocks = LoadLe64(buf + 40);
  if (LoadLe64(buf + 56) != Fnv1a(buf, 56)) {
    return SetError(error, "header checksum mismatch");
  }
  if (out->block_records == 0) {
    return SetError(error, "block_records is zero");
  }
  const uint64_t expect_blocks =
      (out->record_count + out->block_records - 1) / out->block_records;
  if (out->num_blocks != expect_blocks) {
    return SetError(error, "num_blocks disagrees with record_count");
  }
  return true;
}

}  // namespace

std::unique_ptr<FileTraceCursor> FileTraceCursor::Open(const std::string& path,
                                                       std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    SetError(error, "cannot open: " + path);
    return nullptr;
  }
  auto fail = [&](const std::string& message) -> std::unique_ptr<FileTraceCursor> {
    SetError(error, message + " (" + path + ")");
    std::fclose(file);
    return nullptr;
  };

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return fail("seek failed");
  }
  const long file_size = std::ftell(file);
  if (file_size < static_cast<long>(kHeaderBytes + kFooterBytes)) {
    return fail("file too small for header + footer");
  }

  unsigned char header_bytes[kHeaderBytes];
  if (std::fseek(file, 0, SEEK_SET) != 0 ||
      std::fread(header_bytes, 1, kHeaderBytes, file) != kHeaderBytes) {
    return fail("short read (header)");
  }
  TraceHeader header;
  std::string header_error;
  if (!DecodeHeader(header_bytes, &header, &header_error)) {
    return fail(header_error);
  }
  if (static_cast<uint64_t>(file_size) != header.FileBytes()) {
    return fail("file size mismatch (truncated or trailing garbage)");
  }

  // Footer: magic and count agreement with the header.
  unsigned char footer[kFooterBytes];
  if (std::fseek(file, -static_cast<long>(kFooterBytes), SEEK_END) != 0 ||
      std::fread(footer, 1, kFooterBytes, file) != kFooterBytes) {
    return fail("short read (footer)");
  }
  if (LoadLe64(footer + 24) != kFooterMagic) {
    return fail("bad footer magic");
  }
  if (LoadLe64(footer + 8) != header.record_count ||
      LoadLe64(footer + 16) != header.num_blocks) {
    return fail("footer counts disagree with header");
  }

  // Index checksum, streamed through a fixed chunk so validation stays
  // constant-memory on billion-record traces.
  const uint64_t index_bytes = header.num_blocks * kIndexEntryBytes;
  if (std::fseek(file, static_cast<long>(header.IndexOffset()), SEEK_SET) != 0) {
    return fail("seek failed (index)");
  }
  uint64_t checksum = 0xCBF29CE484222325ULL;
  unsigned char chunk[4096];
  uint64_t remaining = index_bytes;
  while (remaining > 0) {
    const size_t want = remaining < sizeof(chunk) ? static_cast<size_t>(remaining) : sizeof(chunk);
    if (std::fread(chunk, 1, want, file) != want) {
      return fail("short read (index)");
    }
    checksum = Fnv1a(chunk, want, checksum);
    remaining -= want;
  }
  if (checksum != LoadLe64(footer + 0)) {
    return fail("index checksum mismatch");
  }

  auto cursor = std::unique_ptr<FileTraceCursor>(new FileTraceCursor(file, header));
  return cursor;
}

FileTraceCursor::FileTraceCursor(std::FILE* file, const TraceHeader& header)
    : file_(file), header_(header) {
  TryMmap();
  const size_t cap = header_.block_records;
  if (map_ == nullptr) {
    raw_.resize(cap * kRecordBytes);  // fread scratch; unneeded when mapped.
  }
  arrival_us_.resize(cap);
  offset_.resize(cap);
  len_.resize(cap);
  op_.resize(cap);
  stream_.resize(cap);
  Reset();
}

void FileTraceCursor::TryMmap() {
#ifdef MITT_TRACE_HAS_MMAP
  if (const char* env = std::getenv("MITT_TRACE_MMAP"); env != nullptr && env[0] == '0') {
    return;  // Forced fread fallback (tests cover both paths with one file).
  }
  const size_t bytes = static_cast<size_t>(header_.FileBytes());
  if (bytes == 0) {
    return;
  }
  void* map = mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fileno(file_), 0);
  if (map == MAP_FAILED) {
    return;  // Silent fallback: fread serves every read below.
  }
  map_ = static_cast<const unsigned char*>(map);
  map_size_ = bytes;
#endif
}

FileTraceCursor::~FileTraceCursor() {
#ifdef MITT_TRACE_HAS_MMAP
  if (map_ != nullptr) {
    munmap(const_cast<unsigned char*>(map_), map_size_);
  }
#endif
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void FileTraceCursor::Reset() {
  next_block_ = 0;
  block_n_ = 0;
  pos_ = 0;
  yielded_ = 0;
  exhausted_ = header_.record_count == 0;
}

bool FileTraceCursor::LoadBlock(uint64_t block) {
  const uint32_t n = header_.RecordsInBlock(block);
  const size_t bytes = static_cast<size_t>(n) * kRecordBytes;
  const unsigned char* p;
  if (map_ != nullptr) {
    // Decode straight out of the mapping; Open() verified the exact file
    // size, so the block extent is always inside the map.
    p = map_ + header_.BlockFileOffset(block);
  } else if (std::fseek(file_, static_cast<long>(header_.BlockFileOffset(block)), SEEK_SET) !=
                 0 ||
             std::fread(raw_.data(), 1, bytes, file_) != bytes) {
    // Open() verified the exact file size, so this only fires if the file
    // shrank underneath us; treat it as end-of-trace rather than corrupting
    // the replay with stale scratch.
    exhausted_ = true;
    block_n_ = 0;
    pos_ = 0;
    return false;
  } else {
    p = raw_.data();
  }
  for (uint32_t i = 0; i < n; ++i, p += 8) {
    arrival_us_[i] = LoadLe64(p);
  }
  for (uint32_t i = 0; i < n; ++i, p += 8) {
    offset_[i] = static_cast<int64_t>(LoadLe64(p));
  }
  for (uint32_t i = 0; i < n; ++i, p += 4) {
    len_[i] = LoadLe32(p);
  }
  for (uint32_t i = 0; i < n; ++i, ++p) {
    op_[i] = *p;
  }
  for (uint32_t i = 0; i < n; ++i, p += 4) {
    stream_[i] = LoadLe32(p);
  }
  block_n_ = n;
  pos_ = 0;
  return true;
}

bool FileTraceCursor::Next(TraceEvent* out) {
  if (exhausted_) {
    return false;
  }
  while (pos_ == block_n_) {
    if (next_block_ >= header_.num_blocks) {
      exhausted_ = true;
      return false;
    }
    if (!LoadBlock(next_block_++)) {
      return false;
    }
  }
  out->at = static_cast<TimeNs>(arrival_us_[pos_]) * 1000;
  out->offset = offset_[pos_];
  out->len = len_[pos_];
  out->op = op_[pos_];
  out->stream = stream_[pos_];
  ++pos_;
  ++yielded_;
  return true;
}

bool FileTraceCursor::ReadIndexEntry(uint64_t block, BlockIndexEntry* out) {
  unsigned char buf[kIndexEntryBytes];
  const unsigned char* p = buf;
  if (map_ != nullptr) {
    p = map_ + header_.IndexOffset() + block * kIndexEntryBytes;
  } else if (std::fseek(file_,
                        static_cast<long>(header_.IndexOffset() + block * kIndexEntryBytes),
                        SEEK_SET) != 0 ||
             std::fread(buf, 1, kIndexEntryBytes, file_) != kIndexEntryBytes) {
    return false;
  }
  out->first_arrival_us = LoadLe64(p);
  out->last_arrival_us = LoadLe64(p + 8);
  return true;
}

bool FileTraceCursor::SeekToTimeUs(uint64_t us) {
  // First block whose last arrival >= us; every earlier block is entirely
  // before the target.
  uint64_t lo = 0;
  uint64_t hi = header_.num_blocks;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    BlockIndexEntry entry;
    if (!ReadIndexEntry(mid, &entry)) {
      exhausted_ = true;
      return false;
    }
    if (entry.last_arrival_us < us) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  yielded_ = 0;
  if (lo >= header_.num_blocks) {
    exhausted_ = true;
    block_n_ = 0;
    pos_ = 0;
    next_block_ = header_.num_blocks;
    return false;
  }
  exhausted_ = false;
  if (!LoadBlock(lo)) {
    return false;
  }
  next_block_ = lo + 1;
  while (pos_ < block_n_ && arrival_us_[pos_] < us) {
    ++pos_;
  }
  return true;
}

}  // namespace mitt::trace
