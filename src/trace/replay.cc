#include "src/trace/replay.h"

#include <utility>

namespace mitt::trace {

TraceReplayDriver::TraceReplayDriver(sim::Simulator* sim, TraceCursor* cursor,
                                     const Options& options, DispatchFn dispatch)
    : sim_(sim),
      cursor_(cursor),
      options_(options),
      dispatch_(std::move(dispatch)),
      rate_scale_(options.rate_scale > 0 ? options.rate_scale : 1.0) {}

void TraceReplayDriver::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  PumpNext();
}

void TraceReplayDriver::PumpNext() {
  for (;;) {
    if (options_.max_events > 0 && scanned_ >= options_.max_events) {
      done_ = true;
      return;
    }
    if (!cursor_->Next(&pending_)) {
      done_ = true;
      return;
    }
    pending_index_ = scanned_++;
    if (options_.num_shards <= 1 ||
        static_cast<int>(pending_.stream % static_cast<uint32_t>(options_.num_shards)) ==
            options_.shard) {
      break;  // Ours; foreign records are scanned past (global indexing).
    }
  }
  // One in-flight arrival per driver: the capture is a single pointer, so
  // the event slots in the simulator pool and nothing allocates.
  sim_->ScheduleAt(ScaledArrival(pending_.at), [this] { Fire(); });
}

void TraceReplayDriver::Fire() {
  pending_.op == kOpWrite ? ++writes_ : ++reads_;
  ++dispatched_;
  const bool measured = pending_index_ >= options_.warmup_events;
  dispatch_(pending_, pending_index_, measured);
  PumpNext();
}

}  // namespace mitt::trace
