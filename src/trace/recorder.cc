#include "src/trace/recorder.h"

#include <algorithm>

#include "src/trace/writer.h"

namespace mitt::trace {

bool TraceRecorder::WriteTo(const std::string& path, std::string* error) const {
  std::vector<Rec> sorted = events_;
  // Total order up to fully-identical records (which are interchangeable),
  // so the written file does not depend on shard merge order.
  std::stable_sort(sorted.begin(), sorted.end(), [](const Rec& a, const Rec& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    if (a.stream != b.stream) {
      return a.stream < b.stream;
    }
    if (a.offset != b.offset) {
      return a.offset < b.offset;
    }
    return a.op < b.op;
  });

  auto writer = TraceWriter::Open(path, TraceWriter::Options{}, error);
  if (writer == nullptr) {
    return false;
  }
  for (const Rec& r : sorted) {
    TraceEvent event;
    event.at = r.at;
    event.offset = r.offset;
    event.len = r.len;
    event.op = r.op;
    event.stream = r.stream;
    if (!writer->Append(event)) {
      if (error != nullptr) {
        *error = writer->error();
      }
      return false;
    }
  }
  if (!writer->Finish()) {
    if (error != nullptr) {
      *error = writer->error();
    }
    return false;
  }
  return true;
}

}  // namespace mitt::trace
