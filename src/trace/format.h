// mitt::trace on-disk format (v1): compact columnar block traces.
//
// Motivation (ROADMAP item 3, TraceTracker direction): judge SLO strategies
// on real arrival processes, which means streaming tens of millions of IOs
// through the stack without ever materializing the trace in memory. The
// format is built for exactly that access pattern — forward replay in trace
// order, constant memory, plus cheap seek-by-time:
//
//   [Header 64 B]
//   [Block 0][Block 1]...[Block B-1]      <- payload, contiguous
//   [Index  16 B x B]                     <- first/last arrival per block
//   [Footer 32 B]
//
// Records are stored in fixed-width *column* runs inside each block (a
// Parquet-style row group): for a block of n records the byte layout is
//   arrival_us u64[n] | offset i64[n] | len u32[n] | op u8[n] | stream u32[n]
// so a reader touches one 25n-byte span per block and decodes straight-line.
// Every block holds exactly `block_records` records except the last, which
// makes each block's file offset a pure function of the header — the index
// exists only for seek-by-time and is never required for replay.
//
// Invariants (checked by the writer, validated by the reader):
//   - arrival_us is non-decreasing across the whole file (replay order ==
//     storage order; binary search over the index is sound).
//   - record_count and num_blocks in header and footer agree, and the file
//     size equals header + payload + index + footer exactly (truncation is
//     detected before any record is returned).
//   - the header and index carry FNV-1a checksums.
//
// All integers are little-endian. Arrivals are stored in *microseconds*
// (u64); the in-memory TraceEvent carries nanoseconds (TimeNs) like the rest
// of the simulator, so writers quantize (truncate) to 1 us — the resolution
// every public block-trace format we import provides anyway.

#ifndef MITTOS_TRACE_FORMAT_H_
#define MITTOS_TRACE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/common/time.h"

namespace mitt::trace {

// "MITTRACE" as a little-endian u64.
inline constexpr uint64_t kTraceMagic = 0x454341525454494DULL;
// "ECARTTIM" — the footer magic, distinct so a header read at the wrong
// offset can never validate.
inline constexpr uint64_t kFooterMagic = 0x4D495454'52414345ULL;
inline constexpr uint32_t kTraceVersion = 1;

inline constexpr size_t kHeaderBytes = 64;
inline constexpr size_t kIndexEntryBytes = 16;
inline constexpr size_t kFooterBytes = 32;
// arrival_us(8) + offset(8) + len(4) + op(1) + stream(4).
inline constexpr size_t kRecordBytes = 25;

inline constexpr uint32_t kDefaultBlockRecords = 4096;

// Trace operations. The replay driver pushes both through the client stack
// as Gets (the arrival process is what the SLO study needs); importers and
// the breakdowns keep the distinction.
inline constexpr uint8_t kOpRead = 0;
inline constexpr uint8_t kOpWrite = 1;

// One trace arrival, in simulator units. `at` is nanoseconds of simulated
// time since trace start; the file stores it quantized to microseconds.
struct TraceEvent {
  TimeNs at = 0;
  int64_t offset = 0;
  uint32_t len = 4096;
  uint8_t op = kOpRead;
  uint32_t stream = 0;
};

// Decoded header (fields in file order; `checksum` covers the preceding 56
// header bytes).
struct TraceHeader {
  uint32_t version = kTraceVersion;
  uint32_t block_records = kDefaultBlockRecords;
  uint64_t record_count = 0;
  int64_t span_bytes = 0;  // Address-space upper bound (0 = unknown).
  uint32_t num_streams = 0;
  uint64_t num_blocks = 0;

  uint64_t PayloadBytes() const { return record_count * kRecordBytes; }
  uint64_t IndexOffset() const { return kHeaderBytes + PayloadBytes(); }
  uint64_t FileBytes() const {
    return IndexOffset() + num_blocks * kIndexEntryBytes + kFooterBytes;
  }
  // Records in block `b` (all blocks full except possibly the last).
  uint32_t RecordsInBlock(uint64_t b) const {
    const uint64_t done = b * block_records;
    const uint64_t rest = record_count - done;
    return static_cast<uint32_t>(rest < block_records ? rest : block_records);
  }
  uint64_t BlockFileOffset(uint64_t b) const {
    return kHeaderBytes + b * static_cast<uint64_t>(block_records) * kRecordBytes;
  }
};

// Per-block index entry: the block's first and last arrival, microseconds.
struct BlockIndexEntry {
  uint64_t first_arrival_us = 0;
  uint64_t last_arrival_us = 0;
};

// --- Little-endian scalar encode/decode (alignment- and endian-safe) ---

inline void StoreLe32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void StoreLe64(unsigned char* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t LoadLe64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadLe32(p)) | static_cast<uint64_t>(LoadLe32(p + 4)) << 32;
}

// FNV-1a 64 over a byte span — the header/index integrity check. Not a
// cryptographic guarantee; it catches the failure modes that matter here
// (truncation, partial writes, stray edits).
inline uint64_t Fnv1a(const unsigned char* data, size_t n, uint64_t h = 0xCBF29CE484222325ULL) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Arrival quantization used by every writer: simulator ns -> file us.
inline uint64_t ArrivalUs(TimeNs at) { return static_cast<uint64_t>(at) / 1000; }

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_FORMAT_H_
