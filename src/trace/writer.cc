#include "src/trace/writer.h"

namespace mitt::trace {
namespace {

// Serializes the 64-byte header into `buf` (checksum over the first 56).
void EncodeHeader(const TraceHeader& header, unsigned char buf[kHeaderBytes]) {
  StoreLe64(buf + 0, kTraceMagic);
  StoreLe32(buf + 8, header.version);
  StoreLe32(buf + 12, static_cast<uint32_t>(kHeaderBytes));
  StoreLe32(buf + 16, header.block_records);
  StoreLe32(buf + 20, header.num_streams);
  StoreLe64(buf + 24, header.record_count);
  StoreLe64(buf + 32, static_cast<uint64_t>(header.span_bytes));
  StoreLe64(buf + 40, header.num_blocks);
  StoreLe64(buf + 48, 0);  // Reserved.
  StoreLe64(buf + 56, Fnv1a(buf, 56));
}

}  // namespace

std::unique_ptr<TraceWriter> TraceWriter::Open(const std::string& path, const Options& options,
                                               std::string* error) {
  if (options.block_records == 0) {
    if (error != nullptr) {
      *error = "block_records must be > 0";
    }
    return nullptr;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open for writing: " + path;
    }
    return nullptr;
  }
  return std::unique_ptr<TraceWriter>(new TraceWriter(file, options));
}

TraceWriter::TraceWriter(std::FILE* file, const Options& options)
    : file_(file), options_(options) {
  header_.block_records = options.block_records;
  header_.span_bytes = options.span_bytes;
  const size_t cap = options.block_records;
  arrival_us_.reserve(cap);
  offset_.reserve(cap);
  len_.reserve(cap);
  op_.reserve(cap);
  stream_.reserve(cap);
  encode_buf_.resize(cap * kRecordBytes);
  // Placeholder header; Finish() rewrites it with the real counts. If the
  // process dies mid-write the zero checksum guarantees Open() rejects the
  // torn file.
  unsigned char zeros[kHeaderBytes] = {};
  if (std::fwrite(zeros, 1, kHeaderBytes, file_) != kHeaderBytes) {
    Fail("short write (header placeholder)");
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool TraceWriter::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
  }
  return false;
}

bool TraceWriter::Append(const TraceEvent& event) {
  if (!error_.empty() || finished_) {
    return false;
  }
  const uint64_t us = ArrivalUs(event.at);
  if (event.at < 0) {
    return Fail("negative arrival time");
  }
  if (any_record_ && us < last_arrival_us_) {
    return Fail("arrivals must be non-decreasing (format invariant)");
  }
  arrival_us_.push_back(us);
  offset_.push_back(event.offset);
  len_.push_back(event.len);
  op_.push_back(event.op);
  stream_.push_back(event.stream);
  last_arrival_us_ = us;
  any_record_ = true;
  if (event.offset + static_cast<int64_t>(event.len) > max_extent_) {
    max_extent_ = event.offset + static_cast<int64_t>(event.len);
  }
  if (event.stream > max_stream_) {
    max_stream_ = event.stream;
  }
  ++header_.record_count;
  if (arrival_us_.size() == options_.block_records) {
    return FlushBlock();
  }
  return true;
}

bool TraceWriter::FlushBlock() {
  const size_t n = arrival_us_.size();
  if (n == 0) {
    return true;
  }
  unsigned char* p = encode_buf_.data();
  for (size_t i = 0; i < n; ++i, p += 8) {
    StoreLe64(p, arrival_us_[i]);
  }
  for (size_t i = 0; i < n; ++i, p += 8) {
    StoreLe64(p, static_cast<uint64_t>(offset_[i]));
  }
  for (size_t i = 0; i < n; ++i, p += 4) {
    StoreLe32(p, len_[i]);
  }
  for (size_t i = 0; i < n; ++i, ++p) {
    *p = op_[i];
  }
  for (size_t i = 0; i < n; ++i, p += 4) {
    StoreLe32(p, stream_[i]);
  }
  const size_t bytes = n * kRecordBytes;
  if (std::fwrite(encode_buf_.data(), 1, bytes, file_) != bytes) {
    return Fail("short write (block)");
  }
  index_.push_back({arrival_us_.front(), arrival_us_.back()});
  ++header_.num_blocks;
  arrival_us_.clear();
  offset_.clear();
  len_.clear();
  op_.clear();
  stream_.clear();
  return true;
}

bool TraceWriter::Finish() {
  if (finished_) {
    return error_.empty();
  }
  if (!error_.empty()) {
    return false;
  }
  if (!FlushBlock()) {
    return false;
  }
  finished_ = true;
  if (header_.span_bytes == 0) {
    header_.span_bytes = max_extent_;
  }
  header_.num_streams = any_record_ ? max_stream_ + 1 : 0;

  // Index.
  std::vector<unsigned char> index_bytes(index_.size() * kIndexEntryBytes);
  for (size_t b = 0; b < index_.size(); ++b) {
    StoreLe64(index_bytes.data() + b * kIndexEntryBytes, index_[b].first_arrival_us);
    StoreLe64(index_bytes.data() + b * kIndexEntryBytes + 8, index_[b].last_arrival_us);
  }
  if (!index_bytes.empty() &&
      std::fwrite(index_bytes.data(), 1, index_bytes.size(), file_) != index_bytes.size()) {
    return Fail("short write (index)");
  }

  // Footer.
  unsigned char footer[kFooterBytes];
  StoreLe64(footer + 0, Fnv1a(index_bytes.data(), index_bytes.size()));
  StoreLe64(footer + 8, header_.record_count);
  StoreLe64(footer + 16, header_.num_blocks);
  StoreLe64(footer + 24, kFooterMagic);
  if (std::fwrite(footer, 1, kFooterBytes, file_) != kFooterBytes) {
    return Fail("short write (footer)");
  }

  // Header, in place.
  unsigned char header_bytes[kHeaderBytes];
  EncodeHeader(header_, header_bytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header_bytes, 1, kHeaderBytes, file_) != kHeaderBytes) {
    return Fail("header rewrite failed");
  }
  if (std::fflush(file_) != 0) {
    return Fail("flush failed");
  }
  std::fclose(file_);
  file_ = nullptr;
  return true;
}

}  // namespace mitt::trace
