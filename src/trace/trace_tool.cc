// trace_tool: command-line front end for the mitt::trace format.
//
//   trace_tool gen --out t.mitttrace [--profile EXCH|mix] [--duration-s 60]
//                  [--seed 42] [--max-records N]
//       Write a synthetic paper-trace (or the five-profile mix) to disk.
//
//   trace_tool import-csv --in msr.csv --out t.mitttrace [--rate-scale X]
//                  [--no-rebase] [--remap-span-bytes N] [--max-records N]
//       Convert an MSR Cambridge / SNIA block-trace CSV.
//
//   trace_tool info t.mitttrace
//       Validate and print header, span, and per-op counts.
//
//   trace_tool sample --out tests/data/sample_mix.mitttrace
//       Regenerate the checked-in sample trace (fixed recipe; see
//       tests/data/README.md).
//
//   trace_tool record --out live.mitttrace [--in t.mitttrace] [--tenants N]
//                  [--nodes N] [--duration-ms N] [--seed N]
//       Run a small live experiment and capture its arrivals back into the
//       v1 format (the TraceRecorder round trip). With --in, the given trace
//       drives the run (replay -> re-record); otherwise a multi-tenant
//       open-loop mix does.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/experiment.h"
#include "src/trace/cursor.h"
#include "src/trace/import.h"
#include "src/trace/writer.h"
#include "src/workload/synthetic_trace.h"

namespace {

using mitt::workload::PaperTraceProfiles;
using mitt::workload::SyntheticTraceCursor;
using mitt::workload::TraceProfile;

int Usage() {
  std::fprintf(stderr,
               "usage: trace_tool gen --out PATH [--profile NAME|mix] [--duration-s N]\n"
               "                      [--seed N] [--max-records N]\n"
               "       trace_tool import-csv --in CSV --out PATH [--rate-scale X]\n"
               "                      [--no-rebase] [--remap-span-bytes N] [--max-records N]\n"
               "       trace_tool info PATH\n"
               "       trace_tool sample --out PATH\n"
               "       trace_tool record --out PATH [--in TRACE] [--tenants N] [--nodes N]\n"
               "                      [--duration-ms N] [--seed N]\n");
  return 2;
}

// Pulls `--flag value` pairs out of argv; returns nullptr when absent.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

const TraceProfile* FindProfile(const std::string& name) {
  for (const auto& profile : PaperTraceProfiles()) {
    if (profile.name == name) {
      return &profile;
    }
  }
  return nullptr;
}

int RunGen(int argc, char** argv) {
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) {
    return Usage();
  }
  const char* profile_name = FlagValue(argc, argv, "--profile");
  const char* duration_s = FlagValue(argc, argv, "--duration-s");
  const char* seed_s = FlagValue(argc, argv, "--seed");
  const char* max_s = FlagValue(argc, argv, "--max-records");
  const mitt::DurationNs duration =
      mitt::Seconds(duration_s != nullptr ? std::atol(duration_s) : 60);
  const uint64_t seed = seed_s != nullptr ? std::strtoull(seed_s, nullptr, 10) : 42;
  const uint64_t max_records = max_s != nullptr ? std::strtoull(max_s, nullptr, 10) : 0;

  std::string error;
  auto writer = mitt::trace::TraceWriter::Open(out, {}, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "trace_tool: %s\n", error.c_str());
    return 1;
  }

  bool ok = false;
  if (profile_name == nullptr || std::strcmp(profile_name, "mix") == 0) {
    ok = mitt::workload::WriteSyntheticMix(PaperTraceProfiles(), duration, seed, max_records,
                                           writer.get());
  } else {
    const TraceProfile* profile = FindProfile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "trace_tool: unknown profile '%s'\n", profile_name);
      return 1;
    }
    ok = mitt::workload::WriteSyntheticMix({*profile}, duration, seed, max_records,
                                           writer.get());
  }
  if (!ok || !writer->Finish()) {
    std::fprintf(stderr, "trace_tool: generation failed: %s\n", writer->error().c_str());
    return 1;
  }
  std::printf("wrote %" PRIu64 " records (%u streams, span %" PRIu64 " us) to %s\n",
              writer->records_written(), writer->streams_seen(), writer->last_arrival_us(),
              out);
  return 0;
}

int RunImportCsv(int argc, char** argv) {
  const char* in = FlagValue(argc, argv, "--in");
  const char* out = FlagValue(argc, argv, "--out");
  if (in == nullptr || out == nullptr) {
    return Usage();
  }
  mitt::trace::CsvImportOptions options;
  if (const char* v = FlagValue(argc, argv, "--rate-scale")) {
    options.rate_scale = std::atof(v);
  }
  options.rebase_time = !HasFlag(argc, argv, "--no-rebase");
  if (const char* v = FlagValue(argc, argv, "--remap-span-bytes")) {
    options.remap_span_bytes = std::strtoll(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--max-records")) {
    options.max_records = std::strtoull(v, nullptr, 10);
  }

  mitt::trace::ImportStats stats;
  std::string error;
  if (!mitt::trace::ImportBlockCsvFile(in, out, options, &stats, &error)) {
    std::fprintf(stderr, "trace_tool: import failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("imported %" PRIu64 "/%" PRIu64 " lines (%" PRIu64 " malformed skipped, %" PRIu64
              " arrivals clamped)\n",
              stats.imported, stats.lines, stats.skipped_malformed, stats.clamped_unsorted);
  std::printf("  reads %" PRIu64 "  writes %" PRIu64 "  streams %u  span %" PRIu64 " us\n",
              stats.reads, stats.writes, stats.streams, stats.span_us);
  return 0;
}

int RunInfo(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  const char* path = argv[argc - 1];
  std::string error;
  auto cursor = mitt::trace::FileTraceCursor::Open(path, &error);
  if (cursor == nullptr) {
    std::fprintf(stderr, "trace_tool: %s\n", error.c_str());
    return 1;
  }
  const auto& header = cursor->header();
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t first_us = 0;
  uint64_t last_us = 0;
  mitt::trace::TraceEvent event;
  bool first = true;
  while (cursor->Next(&event)) {
    event.op == mitt::trace::kOpWrite ? ++writes : ++reads;
    last_us = mitt::trace::ArrivalUs(event.at);
    if (first) {
      first_us = last_us;
      first = false;
    }
  }
  std::printf("%s\n", path);
  std::printf("  version %u  records %" PRIu64 "  blocks %" PRIu64 " x %u\n", header.version,
              header.record_count, header.num_blocks, header.block_records);
  std::printf("  streams %u  span_bytes %" PRId64 "\n", header.num_streams, header.span_bytes);
  std::printf("  reads %" PRIu64 "  writes %" PRIu64 "  arrivals [%" PRIu64 ", %" PRIu64
              "] us\n",
              reads, writes, first_us, last_us);
  return 0;
}

// The fixed recipe behind tests/data/sample_mix.mitttrace: five-profile mix,
// 1200 records, seed 7, 256-record blocks (so the tiny sample still has
// multiple blocks to exercise block/index paths). Changing any constant
// invalidates the checked-in file — regenerate and update the tests.
int RunSample(int argc, char** argv) {
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) {
    return Usage();
  }
  mitt::trace::TraceWriter::Options options;
  options.block_records = 256;
  std::string error;
  auto writer = mitt::trace::TraceWriter::Open(out, options, &error);
  if (writer == nullptr) {
    std::fprintf(stderr, "trace_tool: %s\n", error.c_str());
    return 1;
  }
  if (!mitt::workload::WriteSyntheticMix(PaperTraceProfiles(), mitt::Seconds(2), 7, 1200,
                                         writer.get()) ||
      !writer->Finish()) {
    std::fprintf(stderr, "trace_tool: sample generation failed: %s\n",
                 writer->error().c_str());
    return 1;
  }
  std::printf("wrote sample: %" PRIu64 " records, %u streams -> %s\n",
              writer->records_written(), writer->streams_seen(), out);
  return 0;
}

// Live run -> recorded trace: a small cache-resident cluster driven either
// by a replay of --in or by a multi-tenant open-loop mix, with
// record_trace_path capturing every arrival. The output re-opens with the
// standard cursor, so record|replay round trips compose.
int RunRecord(int argc, char** argv) {
  const char* out = FlagValue(argc, argv, "--out");
  if (out == nullptr) {
    return Usage();
  }
  const char* in = FlagValue(argc, argv, "--in");
  const char* tenants_s = FlagValue(argc, argv, "--tenants");
  const char* nodes_s = FlagValue(argc, argv, "--nodes");
  const char* duration_ms_s = FlagValue(argc, argv, "--duration-ms");
  const char* seed_s = FlagValue(argc, argv, "--seed");

  mitt::harness::ExperimentOptions options;
  options.num_nodes = nodes_s != nullptr ? std::atoi(nodes_s) : 8;
  options.seed = seed_s != nullptr ? std::strtoull(seed_s, nullptr, 10) : 42;
  options.backend = mitt::os::BackendKind::kSsd;
  options.num_keys_per_node = 1 << 14;
  options.warm_fraction = 1.0;
  options.noise = mitt::harness::NoiseKind::kNone;
  options.deadline = mitt::Millis(20);
  options.record_trace_path = out;
  if (in != nullptr) {
    options.replay.trace_path = in;
  } else {
    options.tenants.enabled = true;
    options.tenants.mix.num_tenants = tenants_s != nullptr
                                          ? static_cast<uint32_t>(std::atoi(tenants_s))
                                          : 256;
    options.tenants.mix.total_rate_hz = 8000;
    options.tenants.warmup = mitt::Millis(50);
    options.tenants.duration =
        mitt::Millis(duration_ms_s != nullptr ? std::atol(duration_ms_s) : 500);
  }

  mitt::harness::Experiment experiment(options);
  mitt::harness::RunResult result;
  try {
    result = experiment.Run(mitt::harness::StrategyKind::kMittos);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_tool: record run failed: %s\n", e.what());
    return 1;
  }
  std::printf("recorded %" PRIu64 " arrivals (%" PRIu64 " gets completed) -> %s\n",
              result.recorded_events, result.requests, out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "gen") {
    return RunGen(argc - 2, argv + 2);
  }
  if (command == "import-csv") {
    return RunImportCsv(argc - 2, argv + 2);
  }
  if (command == "info") {
    return RunInfo(argc - 2, argv + 2);
  }
  if (command == "sample") {
    return RunSample(argc - 2, argv + 2);
  }
  if (command == "record") {
    return RunRecord(argc - 2, argv + 2);
  }
  return Usage();
}
