// TraceCursor: the one replay interface for every trace source.
//
// A cursor yields TraceEvents in non-decreasing arrival order, one at a
// time, in constant memory regardless of trace size. Both the on-disk
// columnar format (FileTraceCursor, here) and the synthetic paper-trace
// generators (workload::SyntheticTraceCursor) implement it, so the replay
// driver, the accuracy benches, and bench_replay share one code path for
// real and synthetic workloads.
//
// Steady-state contract: after the first block is decoded, Next() performs
// zero heap allocations (gated by tests/alloc_test.cc) — a cursor can sit
// inside the replay hot loop of a 100M-IO run.

#ifndef MITTOS_TRACE_CURSOR_H_
#define MITTOS_TRACE_CURSOR_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/format.h"

namespace mitt::trace {

class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  // Fills *out with the next event; returns false at end of trace.
  virtual bool Next(TraceEvent* out) = 0;

  // Rewinds to the first event.
  virtual void Reset() = 0;

  // Total events this cursor will yield, when known (0 = unknown).
  virtual uint64_t size_hint() const { return 0; }
};

// Streaming reader for the on-disk format. Holds exactly one decoded block
// (~block_records x 50 B of scratch: the 25 B/record packed bytes plus the
// decoded columns) no matter how large the file is; the
// on-disk index is consulted by SeekToTimeUs via per-probe reads and never
// loaded wholesale.
//
// IO path: the file is mmap'd read-only when the platform allows it —
// LoadBlock decodes straight out of the mapping (no payload copy, and the
// page cache is shared across the per-shard cursors a sharded replay opens
// on the same trace). When mmap is unavailable or fails (or
// MITT_TRACE_MMAP=0 forces it off), every read falls back to the original
// fseek+fread path. Both paths decode the same bytes through the same
// column loop, so the yielded records are byte-identical either way.
class FileTraceCursor : public TraceCursor {
 public:
  // Opens and fully validates `path` (magic, version, checksums, count
  // agreement, exact file size). Returns nullptr and sets *error on any
  // structural problem — a truncated or torn file never yields records.
  static std::unique_ptr<FileTraceCursor> Open(const std::string& path, std::string* error);

  ~FileTraceCursor() override;

  FileTraceCursor(const FileTraceCursor&) = delete;
  FileTraceCursor& operator=(const FileTraceCursor&) = delete;

  bool Next(TraceEvent* out) override;
  void Reset() override;
  uint64_t size_hint() const override { return header_.record_count; }

  // Positions the cursor at the first event with arrival >= `us`, by binary
  // search over the on-disk block index (O(log blocks) 16-byte reads) plus
  // one in-block scan. Returns false (cursor at end) if every event is
  // earlier.
  bool SeekToTimeUs(uint64_t us);

  const TraceHeader& header() const { return header_; }
  // Records already yielded by Next() since the last Reset/Seek (replay
  // progress reporting).
  uint64_t position() const { return yielded_; }
  // True when blocks are served from the mmap'd file (tests exercise both).
  bool mmapped() const { return map_ != nullptr; }

 private:
  FileTraceCursor(std::FILE* file, const TraceHeader& header);

  void TryMmap();
  bool LoadBlock(uint64_t block);
  bool ReadIndexEntry(uint64_t block, BlockIndexEntry* out);

  std::FILE* file_ = nullptr;
  TraceHeader header_;

  // Read-only mapping of the whole file (null = fread fallback).
  const unsigned char* map_ = nullptr;
  size_t map_size_ = 0;

  // Decoded current block (struct-of-arrays, capacity = block_records).
  std::vector<unsigned char> raw_;
  std::vector<uint64_t> arrival_us_;
  std::vector<int64_t> offset_;
  std::vector<uint32_t> len_;
  std::vector<uint8_t> op_;
  std::vector<uint32_t> stream_;

  uint64_t next_block_ = 0;  // Block to decode when the current one drains.
  uint32_t block_n_ = 0;     // Records in the decoded block.
  uint32_t pos_ = 0;         // Next record within the block.
  bool exhausted_ = false;
  uint64_t yielded_ = 0;
};

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_CURSOR_H_
