// TraceRecorder: captures live arrivals back into the v1 columnar format.
//
// The inverse of the replay driver: whatever drives a run (trace replay, the
// tenant load drivers, the closed-loop YCSB clients), each arrival is
// appended as one (at, offset, len, op, stream) record, and WriteTo() emits
// a trace_tool-compatible file via TraceWriter — so a live run can be
// re-replayed, diffed, or rate-scaled later (`trace_tool record`).
//
// Sharded runs own one recorder per shard (Record is not thread-safe; each
// shard appends only its own arrivals during windows). At harvest the
// harness merges them in shard order and WriteTo stable-sorts by
// (arrival, stream, offset, op) before writing — the format requires
// non-decreasing arrivals, and the sort makes the output file a pure
// function of the recorded set, bit-identical at any worker count.

#ifndef MITTOS_TRACE_RECORDER_H_
#define MITTOS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/trace/format.h"

namespace mitt::trace {

class TraceRecorder {
 public:
  // Appends one arrival at simulated time `at` (ns; quantized to µs on
  // write, per the format). Amortized O(1), no per-call allocation beyond
  // vector growth.
  void Record(TimeNs at, int64_t offset, uint32_t len, uint8_t op, uint32_t stream) {
    events_.push_back(Rec{at, offset, len, stream, op});
  }

  // Appends another recorder's events (shard-order merge at harvest).
  void MergeFrom(const TraceRecorder& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

  uint64_t records() const { return events_.size(); }

  // Sorts and writes all recorded events as a v1 columnar trace. Returns
  // false and sets *error on IO failure. Idempotent (keeps the events).
  bool WriteTo(const std::string& path, std::string* error) const;

 private:
  struct Rec {
    TimeNs at;
    int64_t offset;
    uint32_t len;
    uint32_t stream;
    uint8_t op;
  };
  std::vector<Rec> events_;
};

}  // namespace mitt::trace

#endif  // MITTOS_TRACE_RECORDER_H_
