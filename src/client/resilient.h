// The resilience-enabled MittOS client (src/resilience/ threaded through the
// §5 failover loop). Four changes over MittosStrategy's naive walk:
//
//   1. DeadlineBudget — one budget anchored when the user issues the get;
//      every hop sends Remaining(now), so network RTTs and server time
//      already burned are deducted instead of silently re-promising the full
//      SLO per hop. An exhausted budget surfaces kDeadlineExhausted (or, by
//      default, enters the degraded path) rather than a corrupted deadline.
//   2. ReplicaHealth + circuit breakers — the failover walk is reordered
//      away from replicas whose breaker is open (EBUSY storms, fail-slow
//      latency, repeated timeouts); half-open replicas admit one probe.
//   3. Retry governance — a per-client retry token bucket plus decorrelated-
//      jitter backoff gates retries after *timeouts* (drops, pauses,
//      partitions — failures EBUSY cannot signal), so retransmit storms
//      cannot amplify load. EBUSY failovers stay instant: they are the
//      paper's point and are bounded by the replica count.
//   4. Graceful all-busy degradation — when every replica rejects, the get
//      goes to the min-wait-hint replica's *degraded* path (bounded
//      server-side admission + bounded escalating deadlines; see
//      resilience::AdmissionGate) instead of re-sending with the deadline
//      disabled. Shed replies walk the next-best replica; a fully-shed round
//      backs off and re-walks, bounded by degraded_max_rounds.
//
// Every deadline this strategy sends is bounded (>= 0, never
// sched::kNoDeadline); max_sent_deadline() exposes the largest one for the
// boundedness acceptance check. Determinism: breaker windows and backoff
// draws come from seeded per-instance RNG streams, so runs are bit-identical
// at any MITT_TRIAL_WORKERS.

#ifndef MITTOS_CLIENT_RESILIENT_H_
#define MITTOS_CLIENT_RESILIENT_H_

#include <memory>

#include "src/client/strategy.h"
#include "src/resilience/deadline_budget.h"
#include "src/resilience/replica_health.h"
#include "src/resilience/retry_policy.h"

namespace mitt::client {

// The resilience knobs a harness threads through (kept separate from
// MittosStrategy::Options so ExperimentOptions can embed them wholesale).
struct ResilientOptions {
  std::string name = "MittOS+res";
  DurationNs deadline = Millis(13);
  // Attempt timer = remaining budget + 2*RTT estimate + this slack. Generous
  // by design: it exists to catch replicas that will *never* answer in time
  // (drop storms, pauses, partitions), not to race healthy replies. <0 means
  // "use `deadline`".
  DurationNs timer_slack = -1;
  resilience::ReplicaHealthOptions health;
  resilience::RetryBudgetOptions retry;
  resilience::BackoffOptions backoff;
  // All-busy degradation: full replica re-walks before giving up, and the
  // largest deadline a degraded attempt may carry (mirrors the server-side
  // escalation cap — bounded, never disabled).
  int degraded_max_rounds = 12;
  DurationNs degraded_deadline_cap = Seconds(2);
  bool degraded_enabled = true;  // false: exhausted budget -> kDeadlineExhausted.
  // TEST ONLY. Reintroduces the denied-retry/late-EBUSY liveness bug this
  // strategy originally shipped with: when the attempt timer fired, the retry
  // budget denied the resend, and the late reply is an EBUSY/error, the reply
  // is swallowed instead of advancing the walk — the get never settles. Kept
  // behind this flag as the chaos-search engine's planted ground truth (the
  // exactly-once/conservation oracle must find and shrink it); never set it
  // in production configurations.
  bool test_swallow_late_reply = false;
};

class ResilientMittosStrategy : public GetStrategy {
 public:
  using Options = ResilientOptions;

  ResilientMittosStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                          const Options& options);

  std::string_view name() const override { return options_.name; }
  void Get(uint64_t key, GetDoneFn done) override;

  // --- Counters (harness harvest) ---
  uint64_t ebusy_failovers() const { return ebusy_failovers_; }
  uint64_t timeouts_fired() const { return timeouts_fired_; }
  uint64_t degraded_gets() const { return degraded_gets_; }
  uint64_t degraded_sheds_seen() const { return degraded_sheds_seen_; }
  uint64_t deadline_exhausted() const { return deadline_exhausted_; }
  uint64_t backoffs() const { return backoffs_; }
  uint64_t retry_denied() const { return retry_budget_.denied(); }
  // Largest deadline ever sent; must stay bounded (never kNoDeadline).
  DurationNs max_sent_deadline() const { return max_sent_deadline_; }
  // Times a primary-walk hop sent a *larger* remaining budget than the
  // previous hop of the same get. DeadlineBudget monotonicity says this must
  // be 0: time only moves forward, so Remaining() only shrinks. (The
  // degraded path is excluded by design — it deliberately re-escalates to at
  // least one full SLO, bounded by degraded_deadline_cap.)
  uint64_t budget_regressions() const { return budget_regressions_; }
  const resilience::ReplicaHealthTracker& health() const { return health_; }

 private:
  struct GetState;
  struct AttemptState;

  void TryNext(std::shared_ptr<GetState> g);
  void StartDegraded(std::shared_ptr<GetState> g, int round);
  void DegradedNext(std::shared_ptr<GetState> g, int round);
  void Settle(const std::shared_ptr<GetState>& g, Status status);
  void ScheduleBackoff(const std::shared_ptr<GetState>& g, sim::Callback resume);
  DurationNs NoteSentDeadline(DurationNs deadline);

  Options options_;
  resilience::ReplicaHealthTracker health_;
  resilience::RetryBudget retry_budget_;
  resilience::DecorrelatedJitterBackoff backoff_;
  uint64_t ebusy_failovers_ = 0;
  uint64_t timeouts_fired_ = 0;
  uint64_t degraded_gets_ = 0;
  uint64_t degraded_sheds_seen_ = 0;
  uint64_t deadline_exhausted_ = 0;
  uint64_t backoffs_ = 0;
  uint64_t budget_regressions_ = 0;
  DurationNs max_sent_deadline_ = 0;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_RESILIENT_H_
