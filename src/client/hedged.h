// Hedged requests (Dean & Barroso [19], §7.2): "a secondary request is sent
// after the first request has been outstanding for more than the
// 95th-percentile expected latency, which limits the additional load to
// approximately 5% while substantially shortening the latency tail." The
// first request is NOT cancelled.

#ifndef MITTOS_CLIENT_HEDGED_H_
#define MITTOS_CLIENT_HEDGED_H_

#include "src/client/strategy.h"

namespace mitt::client {

class HedgedStrategy : public GetStrategy {
 public:
  struct Options {
    DurationNs hedge_delay = Millis(13);  // The p95 expected latency.
  };

  HedgedStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                 const Options& options);

  std::string_view name() const override { return "Hedged"; }
  void Get(uint64_t key, GetDoneFn done) override;

  uint64_t hedges_sent() const { return hedges_sent_; }

 private:
  Options options_;
  uint64_t hedges_sent_ = 0;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_HEDGED_H_
