// Base (no tail tolerance) and application-timeout (AppTO) strategies.
//
// TimeoutStrategy covers both §7.2's "Base" (a very coarse timeout, as the
// NoSQL defaults of Table 1: tens of seconds) and "AppTO" (timeout = the p95
// deadline; cancel the first try at the application level and retry the next
// replica; the third try disables the timeout).
//
// Table 1's finding that several systems do *not* fail over on timeout — the
// user just gets a read error — is modelled by `failover_on_timeout = false`.

#ifndef MITTOS_CLIENT_TIMEOUT_H_
#define MITTOS_CLIENT_TIMEOUT_H_

#include <memory>
#include <string>

#include "src/client/strategy.h"

namespace mitt::client {

class TimeoutStrategy : public GetStrategy {
 public:
  struct Options {
    std::string name = "Base";
    DurationNs timeout = Seconds(30);
    bool failover_on_timeout = true;
    int max_tries = 3;  // Last try runs without a timeout.
  };

  TimeoutStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                  const Options& options);

  std::string_view name() const override { return options_.name; }
  void Get(uint64_t key, GetDoneFn done) override;
  // Tenant-aware: routes via the placement map; ctx.deadline (the tenant's
  // class SLO) replaces the configured timeout for this request.
  void Get(uint64_t key, const GetContext& ctx, GetDoneFn done) override;

  uint64_t timeouts_fired() const { return timeouts_fired_; }

 private:
  void Attempt(uint64_t key, GetContext ctx, int try_index, std::shared_ptr<GetDoneFn> done,
               obs::TraceContext trace);

  Options options_;
  uint64_t timeouts_fired_ = 0;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_TIMEOUT_H_
