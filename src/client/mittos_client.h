// The MittOS-powered client (§5): attach the user's deadline SLO to the get;
// on EBUSY, instantly fail over to the next replica; the third (last) try
// disables the deadline so the user never sees an IO error
// (Prob(3 nodes busy) is small, §6 Observation #3).

#ifndef MITTOS_CLIENT_MITTOS_CLIENT_H_
#define MITTOS_CLIENT_MITTOS_CLIENT_H_

#include "src/client/strategy.h"

namespace mitt::client {

class MittosStrategy : public GetStrategy {
 public:
  struct Options {
    std::string name = "MittOS";
    // The per-user deadline SLO (the p95 expected latency, §7.2).
    DurationNs deadline = Millis(13);
  };

  MittosStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                 const Options& options);

  std::string_view name() const override { return options_.name; }
  void Get(uint64_t key, GetDoneFn done) override;
  // Tenant-aware: routes via the placement map, sends the tenant's class SLO
  // (ctx.deadline) as the wire deadline.
  void Get(uint64_t key, const GetContext& ctx, GetDoneFn done) override;

  uint64_t ebusy_failovers() const { return ebusy_failovers_; }
  // Last-try sends with the deadline disabled (kNoDeadline) — the unbounded
  // tail the resilience subsystem exists to eliminate.
  uint64_t unbounded_tries() const { return unbounded_tries_; }

 private:
  void Attempt(uint64_t key, GetContext ctx, int try_index, std::shared_ptr<GetDoneFn> done,
               obs::TraceContext trace);

  Options options_;
  uint64_t ebusy_failovers_ = 0;
  uint64_t unbounded_tries_ = 0;
};

// The §7.8.1 extension client: tries carry the deadline and collect the
// OS' predicted-wait hints from EBUSY replies; when *all* replicas reject,
// the final (deadline-disabled) retry goes to the replica with the shortest
// predicted wait instead of blindly to the last one — fixing the ">p99
// Hedged is faster" artifact of Fig. 11.
class MittosWaitStrategy : public GetStrategy {
 public:
  struct Options {
    DurationNs deadline = Millis(13);
  };

  MittosWaitStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                     const Options& options);

  std::string_view name() const override { return "MittOS+wait"; }
  void Get(uint64_t key, GetDoneFn done) override;
  void Get(uint64_t key, const GetContext& ctx, GetDoneFn done) override;

  uint64_t ebusy_failovers() const { return ebusy_failovers_; }
  uint64_t informed_last_tries() const { return informed_last_tries_; }

 private:
  struct Attempt;
  void TryReplica(std::shared_ptr<Attempt> attempt);

  Options options_;
  uint64_t ebusy_failovers_ = 0;
  uint64_t informed_last_tries_ = 0;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_MITTOS_CLIENT_H_
