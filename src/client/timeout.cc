#include "src/client/timeout.h"

#include <memory>

namespace mitt::client {

TimeoutStrategy::TimeoutStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                                 const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {}

void TimeoutStrategy::Get(uint64_t key, GetDoneFn done) {
  Attempt(key, GetContext{}, 0, std::make_shared<GetDoneFn>(std::move(done)), BeginTrace());
}

void TimeoutStrategy::Get(uint64_t key, const GetContext& ctx, GetDoneFn done) {
  Attempt(key, ctx, 0, std::make_shared<GetDoneFn>(std::move(done)), BeginTrace());
}

void TimeoutStrategy::Attempt(uint64_t key, GetContext ctx, int try_index,
                              std::shared_ptr<GetDoneFn> done, obs::TraceContext trace) {
  const tenant::ReplicaGroup replicas = RouteReplicas(key, ctx.tenant);
  const int node =
      replicas.node[static_cast<size_t>(try_index) % static_cast<size_t>(replicas.size)];
  const bool last_try = try_index + 1 >= options_.max_tries;
  const DurationNs timeout = ctx.deadline > 0 ? ctx.deadline : options_.timeout;

  // One timer + one reply race; whichever fires first settles this attempt.
  auto settled = std::make_shared<bool>(false);
  sim::EventId timer = sim::kInvalidEventId;
  if (!last_try && timeout > 0) {
    timer = sim_->Schedule(timeout, [this, key, ctx, try_index, done, settled, trace] {
      if (*settled) {
        return;
      }
      *settled = true;
      ++timeouts_fired_;
      if (!options_.failover_on_timeout) {
        // The user receives a read error even though less-busy replicas are
        // available (§2's surprising finding).
        (*done)({Status::Timeout(), try_index + 1});
        return;
      }
      RecordFailover(trace);
      Attempt(key, ctx, try_index + 1, done, trace);
    });
  }

  SendGet(
      node, key, sched::kNoDeadline,
      [this, timer, settled, done, try_index](Status status) {
        if (*settled) {
          return;  // Timed out earlier; this reply is stale (app-level cancel).
        }
        *settled = true;
        if (timer != sim::kInvalidEventId) {
          sim_->Cancel(timer);
        }
        (*done)({status, try_index + 1});
      },
      trace, ctx.tenant);
}

}  // namespace mitt::client
