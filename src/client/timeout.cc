#include "src/client/timeout.h"

#include <memory>

namespace mitt::client {

TimeoutStrategy::TimeoutStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                                 const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {}

void TimeoutStrategy::Get(uint64_t key, GetDoneFn done) {
  Attempt(key, 0, std::make_shared<GetDoneFn>(std::move(done)), BeginTrace());
}

void TimeoutStrategy::Attempt(uint64_t key, int try_index, std::shared_ptr<GetDoneFn> done,
                              obs::TraceContext trace) {
  const auto replicas = Replicas(key);
  const int node = replicas[static_cast<size_t>(try_index) % replicas.size()];
  const bool last_try = try_index + 1 >= options_.max_tries;

  // One timer + one reply race; whichever fires first settles this attempt.
  auto settled = std::make_shared<bool>(false);
  sim::EventId timer = sim::kInvalidEventId;
  if (!last_try && options_.timeout > 0) {
    timer = sim_->Schedule(options_.timeout, [this, key, try_index, done, settled, trace] {
      if (*settled) {
        return;
      }
      *settled = true;
      ++timeouts_fired_;
      if (!options_.failover_on_timeout) {
        // The user receives a read error even though less-busy replicas are
        // available (§2's surprising finding).
        (*done)({Status::Timeout(), try_index + 1});
        return;
      }
      RecordFailover(trace);
      Attempt(key, try_index + 1, done, trace);
    });
  }

  SendGet(
      node, key, sched::kNoDeadline,
      [this, timer, settled, done, try_index](Status status) {
        if (*settled) {
          return;  // Timed out earlier; this reply is stale (app-level cancel).
        }
        *settled = true;
        if (timer != sim::kInvalidEventId) {
          sim_->Cancel(timer);
        }
        (*done)({status, try_index + 1});
      },
      trace);
}

}  // namespace mitt::client
