// Cloning (§1, §7.2): "for every user request, duplicate it to two random
// replica nodes (out of three choices) and pick the first response." Cuts the
// tail but doubles IO intensity, which self-inflicts noise in the common case
// (Fig. 5a: Clone is worse than Base below ~p93).

#ifndef MITTOS_CLIENT_CLONE_H_
#define MITTOS_CLIENT_CLONE_H_

#include "src/client/strategy.h"

namespace mitt::client {

class CloneStrategy : public GetStrategy {
 public:
  CloneStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed);

  std::string_view name() const override { return "Clone"; }
  void Get(uint64_t key, GetDoneFn done) override;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_CLONE_H_
