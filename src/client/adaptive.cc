#include "src/client/adaptive.h"

#include <cmath>
#include <vector>

namespace mitt::client {
namespace {

// Neutral starting score: a plausible uncontended get latency, so the first
// few requests spread across replicas instead of piling onto node 0.
constexpr double kInitialScoreNs = 5.0 * kMillisecond;

}  // namespace

SnitchStrategy::SnitchStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                               const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {
  ewma_ns_.assign(static_cast<size_t>(cluster->num_nodes()), kInitialScoreNs);
  snapshot_ns_ = ewma_ns_;
  refresh_event_ = sim_->ScheduleDaemon(options_.update_interval, [this] { RefreshTick(); });
}

SnitchStrategy::~SnitchStrategy() { sim_->Cancel(refresh_event_); }

void SnitchStrategy::RefreshTick() {
  snapshot_ns_ = ewma_ns_;
  refresh_event_ = sim_->ScheduleDaemon(options_.update_interval, [this] { RefreshTick(); });
}

void SnitchStrategy::Get(uint64_t key, GetDoneFn done) {
  const auto replicas = Replicas(key);
  int best = replicas[0];
  for (const int node : replicas) {
    if (snapshot_ns_[static_cast<size_t>(node)] < snapshot_ns_[static_cast<size_t>(best)]) {
      best = node;
    }
  }
  // Badness threshold: near-equal scores spread randomly instead of herding.
  const double best_score = snapshot_ns_[static_cast<size_t>(best)];
  std::vector<int> close;
  for (const int node : replicas) {
    if (snapshot_ns_[static_cast<size_t>(node)] <=
        best_score * (1.0 + options_.badness_threshold)) {
      close.push_back(node);
    }
  }
  if (close.size() > 1) {
    best = close[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(close.size()) - 1))];
  }
  const TimeNs start = sim_->Now();
  auto shared_done = std::make_shared<GetDoneFn>(std::move(done));
  SendGet(
      best, key, sched::kNoDeadline,
      [this, best, start, shared_done](Status status) {
        const double sample = static_cast<double>(sim_->Now() - start);
        double& score = ewma_ns_[static_cast<size_t>(best)];
        score = (1.0 - options_.ewma_alpha) * score + options_.ewma_alpha * sample;
        (*shared_done)({status, 1});
      },
      BeginTrace());
}

C3Strategy::C3Strategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                       const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {
  ewma_ns_.assign(static_cast<size_t>(cluster->num_nodes()), kInitialScoreNs);
  outstanding_.assign(static_cast<size_t>(cluster->num_nodes()), 0);
  last_update_.assign(static_cast<size_t>(cluster->num_nodes()), 0);
}

double C3Strategy::Score(int node) const {
  const auto i = static_cast<size_t>(node);
  // Stale observations decay toward the fleet mean.
  double mean = 0;
  for (const double v : ewma_ns_) {
    mean += v;
  }
  mean /= static_cast<double>(ewma_ns_.size());
  const double age = static_cast<double>(sim_->Now() - last_update_[i]);
  const double freshness = std::exp(-age / static_cast<double>(options_.score_decay));
  const double base = mean + (ewma_ns_[i] - mean) * freshness;
  const double q = 1.0 + outstanding_[i];
  // Cubic penalty on concurrency (C3's q-hat^3 term), scaled by the observed
  // response time as a proxy for the service rate.
  return base + q * q * q * base * 0.1;
}

void C3Strategy::Get(uint64_t key, GetDoneFn done) {
  const auto replicas = Replicas(key);
  int best = replicas[0];
  for (const int node : replicas) {
    if (Score(node) < Score(best)) {
      best = node;
    }
  }
  const TimeNs start = sim_->Now();
  ++outstanding_[static_cast<size_t>(best)];
  auto shared_done = std::make_shared<GetDoneFn>(std::move(done));
  SendGet(
      best, key, sched::kNoDeadline,
      [this, best, start, shared_done](Status status) {
        --outstanding_[static_cast<size_t>(best)];
        const double sample = static_cast<double>(sim_->Now() - start);
        double& score = ewma_ns_[static_cast<size_t>(best)];
        score = (1.0 - options_.ewma_alpha) * score + options_.ewma_alpha * sample;
        last_update_[static_cast<size_t>(best)] = sim_->Now();
        (*shared_done)({status, 1});
      },
      BeginTrace());
}

}  // namespace mitt::client
