#include "src/client/resilient.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace mitt::client {
namespace {

constexpr DurationNs kNoHint = -1;

// A replica is fail-slow only when its success latency alone breaks the SLO;
// sub-deadline contention is the predictor's business, not the breaker's.
resilience::ReplicaHealthOptions HealthWithSloFloor(const ResilientOptions& options) {
  resilience::ReplicaHealthOptions health = options.health;
  health.latency_floor = std::max(health.latency_floor, options.deadline);
  return health;
}

}  // namespace

// One logical get. `settled` is the done-exactly-once latch: every completion
// path funnels through Settle(), and late replies from attempts the timer
// already abandoned check it before doing anything user-visible.
struct ResilientMittosStrategy::GetState {
  uint64_t key = 0;
  std::vector<int> replicas;           // Health-ordered at Get() time.
  std::vector<DurationNs> hints;       // EBUSY wait hints, kNoHint until seen.
  size_t next = 0;
  resilience::DeadlineBudget budget{0, 0};
  GetDoneFn done;
  obs::TraceContext trace;
  bool settled = false;
  int tries = 0;
  // Remaining budget sent by the previous primary-walk hop; <0 until the
  // first hop. Feeds the budget-monotonicity oracle counter.
  DurationNs last_sent_remaining = -1;
  std::vector<int> degraded_order;
  size_t degraded_next = 0;
  Status last_degraded_status = Status::Unavailable();
};

// One attempt (one replica contact) inside a get. The timer and the reply
// race; `settled` marks which one claimed the attempt.
struct ResilientMittosStrategy::AttemptState {
  int node = -1;
  size_t index = 0;
  TimeNs sent_at = 0;
  sim::EventId timer = sim::kInvalidEventId;
  bool settled = false;
  // The timer got a retry token and scheduled a backoff-resume: the walk has
  // a new driver, so the late reply must not also advance it.
  bool retry_scheduled = false;
};

ResilientMittosStrategy::ResilientMittosStrategy(sim::Simulator* sim, cluster::Cluster* cluster,
                                                 uint64_t seed, const Options& options)
    : GetStrategy(sim, cluster, seed),
      options_(options),
      health_(sim, cluster->num_nodes(), HealthWithSloFloor(options), seed ^ 0x4EA1'74C3ULL),
      retry_budget_(options.retry),
      backoff_(options.backoff, seed ^ 0xBAC0'0FF5ULL) {}

DurationNs ResilientMittosStrategy::NoteSentDeadline(DurationNs deadline) {
  // The bounded-deadline contract: this strategy never disables a deadline.
  deadline = resilience::ClampDeadline(deadline);
  if (deadline < 0) {
    deadline = 0;  // Unlimited budgets still go out bounded (caller floors them).
  }
  max_sent_deadline_ = std::max(max_sent_deadline_, deadline);
  return deadline;
}

void ResilientMittosStrategy::Get(uint64_t key, GetDoneFn done) {
  auto g = std::make_shared<GetState>();
  g->key = key;
  g->replicas = Replicas(key);
  health_.OrderReplicas(&g->replicas);
  g->hints.assign(g->replicas.size(), kNoHint);
  g->budget = resilience::DeadlineBudget(options_.deadline, sim_->Now());
  g->done = std::move(done);
  g->trace = BeginTrace();
  TryNext(std::move(g));
}

void ResilientMittosStrategy::Settle(const std::shared_ptr<GetState>& g, Status status) {
  if (g->settled) {
    return;
  }
  g->settled = true;
  if (status.ok()) {
    retry_budget_.OnSuccess();
    backoff_.Reset();
  }
  g->done({status, g->tries});
}

void ResilientMittosStrategy::ScheduleBackoff(const std::shared_ptr<GetState>& g,
                                              sim::Callback resume) {
  const DurationNs delay = backoff_.Next();
  ++backoffs_;
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && g->trace.traced()) {
    tr->RecordSpan(obs::SpanKind::kBackoff, g->trace, sim_->Now(), sim_->Now() + delay);
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("resilience_backoff_total").Add();
  }
  sim_->Schedule(delay, std::move(resume));
}

void ResilientMittosStrategy::TryNext(std::shared_ptr<GetState> g) {
  if (g->settled) {
    return;
  }
  const TimeNs now = sim_->Now();
  if (g->budget.Exhausted(now)) {
    ++deadline_exhausted_;
    if (obs::MetricsRegistry* m = sim_->metrics()) {
      m->counter("resilience_deadline_exhausted_total").Add();
    }
    if (!options_.degraded_enabled) {
      Settle(g, Status::DeadlineExhausted());
      return;
    }
    StartDegraded(std::move(g), 0);
    return;
  }
  // Half-open replicas admit exactly one probe; when another get holds the
  // probe slot, skip past them (open replicas at the tail stay reachable as
  // the walk's last resort).
  while (g->next < g->replicas.size()) {
    const int candidate = g->replicas[g->next];
    if (health_.state(candidate) != resilience::BreakerState::kHalfOpen ||
        health_.AcquireProbe(candidate)) {
      break;
    }
    ++g->next;
  }
  if (g->next >= g->replicas.size()) {
    if (!options_.degraded_enabled) {
      Settle(g, Status::Ebusy());
      return;
    }
    StartDegraded(std::move(g), 0);
    return;
  }
  const size_t index = g->next++;
  const int node = g->replicas[index];
  ++g->tries;
  const DurationNs remaining = NoteSentDeadline(
      g->budget.unlimited() ? options_.deadline : g->budget.Remaining(now));
  if (g->last_sent_remaining >= 0 && remaining > g->last_sent_remaining) {
    ++budget_regressions_;
  }
  g->last_sent_remaining = remaining;

  auto attempt = std::make_shared<AttemptState>();
  attempt->node = node;
  attempt->index = index;
  attempt->sent_at = now;

  // The attempt timer exists for replies that never come inside the SLO —
  // dropped packets (retransmitted 200 ms later), paused nodes, partitions.
  // Generous on purpose: remaining budget + a full round trip + slack, so a
  // healthy world never races it.
  const DurationNs slack = options_.timer_slack >= 0 ? options_.timer_slack : options_.deadline;
  const DurationNs timer_delay = remaining + 2 * cluster_->network().round_trip_estimate() + slack;
  attempt->timer = sim_->Schedule(timer_delay, [this, g, attempt] {
    if (attempt->settled || g->settled) {
      return;
    }
    attempt->settled = true;
    ++timeouts_fired_;
    health_.OnTimeout(attempt->node);
    // Retry governance: a timeout retry re-sends work the cluster may still
    // be doing — only amplify when the token bucket allows, and never
    // back-to-back. A denied retry waits for the outstanding reply (the
    // network model always redelivers eventually), which is exactly the
    // no-amplification behavior a retry storm needs.
    if (retry_budget_.TryAcquire()) {
      attempt->retry_scheduled = true;
      ScheduleBackoff(g, [this, g] { TryNext(g); });
    } else if (obs::MetricsRegistry* m = sim_->metrics()) {
      m->counter("resilience_retry_denied_total").Add();
    }
  });

  SendGetWithHint(
      node, g->key, remaining,
      [this, g, attempt](Status status, DurationNs hint) {
        // Health sees every reply, even stale ones — a late answer is still
        // evidence about the replica.
        health_.OnReply(attempt->node, sim_->Now() - attempt->sent_at, status.busy());
        if (attempt->settled) {
          // The timer abandoned this attempt, but a late success can still
          // rescue the get (done-once is guarded by g->settled).
          if (status.ok()) {
            Settle(g, status);
            return;
          }
          // Liveness: when the retry token bucket denied the timer a resend,
          // this late reply is the only thing still driving the get — a late
          // EBUSY (or error) must advance the walk, not be swallowed.
          // test_swallow_late_reply reinstates the pre-fix swallow as the
          // chaos search's planted bug (see ResilientOptions).
          if (!options_.test_swallow_late_reply && !attempt->retry_scheduled && !g->settled) {
            if (status.busy()) {
              g->hints[attempt->index] = hint;
              ++ebusy_failovers_;
              RecordFailover(g->trace);
              TryNext(g);
            } else {
              Settle(g, status);
            }
          }
          return;
        }
        attempt->settled = true;
        sim_->Cancel(attempt->timer);
        if (g->settled) {
          return;
        }
        if (status.busy()) {
          g->hints[attempt->index] = hint;
          ++ebusy_failovers_;
          RecordFailover(g->trace);
          TryNext(g);  // Instant, exceptionless failover (§5) — no backoff.
          return;
        }
        Settle(g, status);
      },
      g->trace);
}

void ResilientMittosStrategy::StartDegraded(std::shared_ptr<GetState> g, int round) {
  if (g->settled) {
    return;
  }
  // Min-wait-hint first (§7.8.1's informed pick), replicas that never
  // answered (timeout, unknown hint) last; stable within ties so the health
  // ordering still breaks them.
  g->degraded_order = g->replicas;
  std::stable_sort(g->degraded_order.begin(), g->degraded_order.end(), [&g](int a, int b) {
    auto hint_of = [&g](int node) {
      for (size_t i = 0; i < g->replicas.size(); ++i) {
        if (g->replicas[i] == node) {
          const DurationNs h = g->hints[i];
          return h == kNoHint ? INT64_MAX : h;
        }
      }
      return INT64_MAX;
    };
    return hint_of(a) < hint_of(b);
  });
  g->degraded_next = 0;
  DegradedNext(std::move(g), round);
}

void ResilientMittosStrategy::DegradedNext(std::shared_ptr<GetState> g, int round) {
  if (g->settled) {
    return;
  }
  if (g->degraded_next >= g->degraded_order.size()) {
    // Every replica shed this round: the whole cluster is saturated beyond
    // its degraded-admission capacity. Back off and re-walk; slots free up
    // as admitted reads complete.
    if (round + 1 >= options_.degraded_max_rounds) {
      Settle(g, g->last_degraded_status);
      return;
    }
    ScheduleBackoff(g, [this, g, round] { StartDegraded(g, round + 1); });
    return;
  }
  const int node = g->degraded_order[g->degraded_next++];
  ++g->tries;
  ++degraded_gets_;
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("resilience_degraded_total").Add();
  }
  // Give the degraded server at least one full SLO to work with — bounded,
  // never disabled. When the replica's EBUSY told us its predicted wait, send
  // hint + SLO so the very first degraded attempt admits instead of burning a
  // server-side reject/wait/escalate cycle; the cap mirrors the server's.
  DurationNs deadline =
      std::max(g->budget.unlimited() ? options_.deadline : g->budget.Remaining(sim_->Now()),
               options_.deadline);
  for (size_t i = 0; i < g->replicas.size(); ++i) {
    if (g->replicas[i] == node && g->hints[i] != kNoHint) {
      deadline = std::max(deadline, g->hints[i] + options_.deadline);
      break;
    }
  }
  deadline = NoteSentDeadline(std::min(deadline, options_.degraded_deadline_cap));
  SendDegradedGet(
      node, g->key, deadline,
      [this, g, round](Status status, DurationNs) {
        if (g->settled) {
          return;
        }
        g->last_degraded_status = status;
        if (status.code() == StatusCode::kUnavailable) {
          ++degraded_sheds_seen_;
          DegradedNext(g, round);
          return;
        }
        Settle(g, status);
      },
      g->trace);
}

}  // namespace mitt::client
