#include "src/client/strategy.h"

#include "src/resilience/deadline_budget.h"

namespace mitt::client {

GetStrategy::GetStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {}

void GetStrategy::SendGet(int node, uint64_t key, DurationNs deadline,
                          std::function<void(Status)> on_reply, obs::TraceContext trace,
                          tenant::TenantId tenant) {
  SendGetWithHint(
      node, key, deadline,
      [on_reply = std::move(on_reply)](Status s, DurationNs) { on_reply(s); }, trace, tenant);
}

void GetStrategy::SendGetWithHint(int node, uint64_t key, DurationNs deadline,
                                  std::function<void(Status, DurationNs)> on_reply,
                                  obs::TraceContext trace, tenant::TenantId tenant) {
  // Underflow guard at the send boundary: a caller whose remaining-deadline
  // arithmetic went negative must read as "no time left" (0), never alias
  // into kNoDeadline (-1) and disable the SLO.
  deadline = resilience::ClampDeadline(deadline);
  cluster::Network& net = cluster_->network();
  cluster::Cluster* cluster = cluster_;
  // Both hops are tagged with the storage-node endpoint so per-link faults
  // (src/fault/) hit requests to / replies from that node. The request hop
  // runs on the node's shard; the reply hop routes back to this client's
  // home shard so the continuation fires on the simulator that issued it.
  const int home = sim_->shard_id();
  net.Deliver(node, net.ShardOfNode(node),
              [cluster, node, home, key, deadline, trace, tenant,
               on_reply = std::move(on_reply)]() mutable {
                cluster->node(node).HandleGetWithHint(
                    key, deadline,
                    [cluster, node, home, on_reply = std::move(on_reply)](
                        Status status, DurationNs hint) mutable {
                      cluster->network().Deliver(
                          node, home,
                          [on_reply = std::move(on_reply), status, hint] {
                            on_reply(status, hint);
                          });
                    },
                    trace, tenant);
              });
}

void GetStrategy::SendDegradedGet(int node, uint64_t key, DurationNs deadline,
                                  std::function<void(Status, DurationNs)> on_reply,
                                  obs::TraceContext trace) {
  deadline = resilience::ClampDeadline(deadline);
  cluster::Network& net = cluster_->network();
  cluster::Cluster* cluster = cluster_;
  const int home = sim_->shard_id();
  net.Deliver(node, net.ShardOfNode(node),
              [cluster, node, home, key, deadline, trace,
               on_reply = std::move(on_reply)]() mutable {
                cluster->node(node).HandleDegradedGet(
                    key, deadline,
                    [cluster, node, home, on_reply = std::move(on_reply)](
                        Status status, DurationNs hint) mutable {
                      cluster->network().Deliver(
                          node, home,
                          [on_reply = std::move(on_reply), status, hint] {
                            on_reply(status, hint);
                          });
                    },
                    trace);
              });
}

tenant::ReplicaGroup GetStrategy::RouteReplicas(uint64_t key, tenant::TenantId tenant) const {
  if (placement_ != nullptr && tenant != tenant::kNoTenant &&
      tenant < placement_->num_tenants()) {
    return placement_->group(tenant);
  }
  tenant::ReplicaGroup g;
  const std::vector<int> ring = cluster_->ReplicasOf(key);
  const size_t n = ring.size() < static_cast<size_t>(tenant::ReplicaGroup::kMaxReplication)
                       ? ring.size()
                       : static_cast<size_t>(tenant::ReplicaGroup::kMaxReplication);
  g.size = static_cast<int>(n);
  for (size_t i = 0; i < n; ++i) {
    g.node[i] = ring[i];
  }
  return g;
}

obs::TraceContext GetStrategy::BeginTrace() {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    return obs::TraceContext{tr->NewRequestId(), /*node=*/-1};
  }
  return {};
}

void GetStrategy::RecordFailover(const obs::TraceContext& trace) {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && trace.traced()) {
    tr->RecordInstant(obs::SpanKind::kFailover, trace, sim_->Now());
  }
}

}  // namespace mitt::client
