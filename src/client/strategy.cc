#include "src/client/strategy.h"

namespace mitt::client {

GetStrategy::GetStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {}

void GetStrategy::SendGet(int node, uint64_t key, DurationNs deadline,
                          std::function<void(Status)> on_reply, obs::TraceContext trace) {
  SendGetWithHint(
      node, key, deadline,
      [on_reply = std::move(on_reply)](Status s, DurationNs) { on_reply(s); }, trace);
}

void GetStrategy::SendGetWithHint(int node, uint64_t key, DurationNs deadline,
                                  std::function<void(Status, DurationNs)> on_reply,
                                  obs::TraceContext trace) {
  cluster::Network& net = cluster_->network();
  cluster::Cluster* cluster = cluster_;
  // Both hops are tagged with the storage-node endpoint so per-link faults
  // (src/fault/) hit requests to / replies from that node.
  net.Deliver(node,
              [cluster, node, key, deadline, trace, on_reply = std::move(on_reply)]() mutable {
                cluster->node(node).HandleGetWithHint(
                    key, deadline,
                    [cluster, node, on_reply = std::move(on_reply)](Status status,
                                                                   DurationNs hint) mutable {
                      cluster->network().Deliver(node, [on_reply = std::move(on_reply), status,
                                                        hint] { on_reply(status, hint); });
                    },
                    trace);
              });
}

obs::TraceContext GetStrategy::BeginTrace() {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    return obs::TraceContext{tr->NewRequestId(), /*node=*/-1};
  }
  return {};
}

void GetStrategy::RecordFailover(const obs::TraceContext& trace) {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && trace.traced()) {
    tr->RecordInstant(obs::SpanKind::kFailover, trace, sim_->Now());
  }
}

}  // namespace mitt::client
