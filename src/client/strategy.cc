#include "src/client/strategy.h"

#include "src/resilience/deadline_budget.h"

namespace mitt::client {

GetStrategy::GetStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {}

void GetStrategy::SendGet(int node, uint64_t key, DurationNs deadline,
                          std::function<void(Status)> on_reply, obs::TraceContext trace) {
  SendGetWithHint(
      node, key, deadline,
      [on_reply = std::move(on_reply)](Status s, DurationNs) { on_reply(s); }, trace);
}

void GetStrategy::SendGetWithHint(int node, uint64_t key, DurationNs deadline,
                                  std::function<void(Status, DurationNs)> on_reply,
                                  obs::TraceContext trace) {
  // Underflow guard at the send boundary: a caller whose remaining-deadline
  // arithmetic went negative must read as "no time left" (0), never alias
  // into kNoDeadline (-1) and disable the SLO.
  deadline = resilience::ClampDeadline(deadline);
  cluster::Network& net = cluster_->network();
  cluster::Cluster* cluster = cluster_;
  // Both hops are tagged with the storage-node endpoint so per-link faults
  // (src/fault/) hit requests to / replies from that node. The request hop
  // runs on the node's shard; the reply hop routes back to this client's
  // home shard so the continuation fires on the simulator that issued it.
  const int home = sim_->shard_id();
  net.Deliver(node, net.ShardOfNode(node),
              [cluster, node, home, key, deadline, trace,
               on_reply = std::move(on_reply)]() mutable {
                cluster->node(node).HandleGetWithHint(
                    key, deadline,
                    [cluster, node, home, on_reply = std::move(on_reply)](
                        Status status, DurationNs hint) mutable {
                      cluster->network().Deliver(
                          node, home,
                          [on_reply = std::move(on_reply), status, hint] {
                            on_reply(status, hint);
                          });
                    },
                    trace);
              });
}

void GetStrategy::SendDegradedGet(int node, uint64_t key, DurationNs deadline,
                                  std::function<void(Status, DurationNs)> on_reply,
                                  obs::TraceContext trace) {
  deadline = resilience::ClampDeadline(deadline);
  cluster::Network& net = cluster_->network();
  cluster::Cluster* cluster = cluster_;
  const int home = sim_->shard_id();
  net.Deliver(node, net.ShardOfNode(node),
              [cluster, node, home, key, deadline, trace,
               on_reply = std::move(on_reply)]() mutable {
                cluster->node(node).HandleDegradedGet(
                    key, deadline,
                    [cluster, node, home, on_reply = std::move(on_reply)](
                        Status status, DurationNs hint) mutable {
                      cluster->network().Deliver(
                          node, home,
                          [on_reply = std::move(on_reply), status, hint] {
                            on_reply(status, hint);
                          });
                    },
                    trace);
              });
}

obs::TraceContext GetStrategy::BeginTrace() {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    return obs::TraceContext{tr->NewRequestId(), /*node=*/-1};
  }
  return {};
}

void GetStrategy::RecordFailover(const obs::TraceContext& trace) {
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled() && trace.traced()) {
    tr->RecordInstant(obs::SpanKind::kFailover, trace, sim_->Now());
  }
}

}  // namespace mitt::client
