#include "src/client/clone.h"

#include <memory>

namespace mitt::client {

CloneStrategy::CloneStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed)
    : GetStrategy(sim, cluster, seed) {}

void CloneStrategy::Get(uint64_t key, GetDoneFn done) {
  const auto replicas = Replicas(key);
  // Two distinct random replicas.
  const auto first = static_cast<size_t>(rng_.UniformInt(0, 2));
  size_t second = static_cast<size_t>(rng_.UniformInt(0, 1));
  if (second >= first) {
    ++second;
  }
  auto settled = std::make_shared<bool>(false);
  auto shared_done = std::make_shared<GetDoneFn>(std::move(done));
  auto on_reply = [settled, shared_done](Status status) {
    if (*settled) {
      return;  // The slower clone; discarded.
    }
    *settled = true;
    (*shared_done)({status, 2});
  };
  const obs::TraceContext trace = BeginTrace();
  SendGet(replicas[first], key, sched::kNoDeadline, on_reply, trace);
  SendGet(replicas[second], key, sched::kNoDeadline, on_reply, trace);
}

}  // namespace mitt::client
