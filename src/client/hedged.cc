#include "src/client/hedged.h"

#include <memory>

namespace mitt::client {

HedgedStrategy::HedgedStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                               const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {}

void HedgedStrategy::Get(uint64_t key, GetDoneFn done) {
  const auto replicas = Replicas(key);
  auto settled = std::make_shared<bool>(false);
  auto shared_done = std::make_shared<GetDoneFn>(std::move(done));
  auto tries = std::make_shared<int>(1);

  auto on_reply = [settled, shared_done, tries](Status status) {
    if (*settled) {
      return;  // The slower of the two; the first response wins.
    }
    *settled = true;
    (*shared_done)({status, *tries});
  };

  const obs::TraceContext trace = BeginTrace();
  SendGet(replicas[0], key, sched::kNoDeadline, on_reply, trace);

  // Hedge timer: after the p95 delay, duplicate to the next replica. The
  // first request stays outstanding (no cancellation).
  sim_->Schedule(options_.hedge_delay,
                 [this, key, second = replicas[1], settled, tries, on_reply, trace] {
                   if (*settled) {
                     return;
                   }
                   ++hedges_sent_;
                   *tries = 2;
                   RecordFailover(trace);
                   SendGet(second, key, sched::kNoDeadline, on_reply, trace);
                 });
}

}  // namespace mitt::client
