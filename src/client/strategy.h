// Client-side tail-tolerance strategies (§7.2's comparison set).
//
// Every strategy implements one replicated get() over the cluster; the
// experiment harness runs identical workloads and noise replays through each
// strategy and compares the completion-time distributions. The shared
// plumbing (network round trip to a chosen replica) lives in the base class.

#ifndef MITTOS_CLIENT_STRATEGY_H_
#define MITTOS_CLIENT_STRATEGY_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace mitt::client {

// Completion of one replicated get: final status (kOk, or an error for
// strategies that surface timeouts as user errors, §2) and how many tries
// (server contacts) it took.
struct GetResult {
  Status status;
  int tries = 1;
};

using GetDoneFn = std::function<void(const GetResult&)>;

class GetStrategy {
 public:
  GetStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed);
  virtual ~GetStrategy() = default;

  virtual std::string_view name() const = 0;

  // Issues one replicated get for `key`; calls `done` exactly once.
  virtual void Get(uint64_t key, GetDoneFn done) = 0;

 protected:
  // One request/reply round trip to `node`. `trace` ties the server-side
  // spans back to this client request (src/obs/; default: untraced).
  void SendGet(int node, uint64_t key, DurationNs deadline, std::function<void(Status)> on_reply,
               obs::TraceContext trace = {});

  // Round trip whose EBUSY reply carries the server's predicted wait
  // (§7.8.1's interface extension).
  void SendGetWithHint(int node, uint64_t key, DurationNs deadline,
                       std::function<void(Status, DurationNs)> on_reply,
                       obs::TraceContext trace = {});

  // Round trip into the server's *degraded* read path (src/resilience/):
  // bounded admission behind a load-shed gate, bounded escalating deadlines.
  // Replies kUnavailable (+ wait hint) when the gate sheds.
  void SendDegradedGet(int node, uint64_t key, DurationNs deadline,
                       std::function<void(Status, DurationNs)> on_reply,
                       obs::TraceContext trace = {});

  // Starts a trace for one logical get(): a fresh deterministic request id
  // when a tracer is attached and enabled, an untraced context otherwise.
  obs::TraceContext BeginTrace();

  // Records the client-side failover hop (retrying another replica after an
  // EBUSY or a timeout) as an instant span.
  void RecordFailover(const obs::TraceContext& trace);

  std::vector<int> Replicas(uint64_t key) const { return cluster_->ReplicasOf(key); }

  sim::Simulator* sim_;
  cluster::Cluster* cluster_;
  Rng rng_;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_STRATEGY_H_
