// Client-side tail-tolerance strategies (§7.2's comparison set).
//
// Every strategy implements one replicated get() over the cluster; the
// experiment harness runs identical workloads and noise replays through each
// strategy and compares the completion-time distributions. The shared
// plumbing (network round trip to a chosen replica) lives in the base class.

#ifndef MITTOS_CLIENT_STRATEGY_H_
#define MITTOS_CLIENT_STRATEGY_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/tenant/placement.h"
#include "src/tenant/tenant.h"

namespace mitt::client {

// Completion of one replicated get: final status (kOk, or an error for
// strategies that surface timeouts as user errors, §2) and how many tries
// (server contacts) it took.
struct GetResult {
  Status status;
  int tries = 1;
};

using GetDoneFn = std::function<void(const GetResult&)>;

// Per-request context for tenant-aware gets (src/tenant/): which tenant the
// request belongs to (routes via the attached placement map and is accounted
// per tenant on the server) and an optional per-request SLO deadline
// override (0 = the strategy's configured deadline) carrying the tenant's
// class SLO.
struct GetContext {
  tenant::TenantId tenant = tenant::kNoTenant;
  DurationNs deadline = 0;
};

class GetStrategy {
 public:
  GetStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed);
  virtual ~GetStrategy() = default;

  virtual std::string_view name() const = 0;

  // Issues one replicated get for `key`; calls `done` exactly once.
  virtual void Get(uint64_t key, GetDoneFn done) = 0;

  // Tenant-aware issue. Strategies that understand placement routing and
  // per-class deadlines override this; the default drops the context and
  // behaves like the single-tenant Get.
  virtual void Get(uint64_t key, const GetContext& ctx, GetDoneFn done) {
    (void)ctx;
    Get(key, std::move(done));
  }

  // Attaches the tenant->replica placement map consulted by RouteReplicas.
  // The map is owned by the harness; the placement controller mutates it
  // only at quiesced barriers (see src/tenant/placement.h).
  void set_placement(const tenant::PlacementMap* placement) { placement_ = placement; }

 protected:
  // One request/reply round trip to `node`. `trace` ties the server-side
  // spans back to this client request (src/obs/; default: untraced);
  // `tenant` rides along so the server's per-tenant accounting sees it.
  void SendGet(int node, uint64_t key, DurationNs deadline, std::function<void(Status)> on_reply,
               obs::TraceContext trace = {}, tenant::TenantId tenant = tenant::kNoTenant);

  // Round trip whose EBUSY reply carries the server's predicted wait
  // (§7.8.1's interface extension).
  void SendGetWithHint(int node, uint64_t key, DurationNs deadline,
                       std::function<void(Status, DurationNs)> on_reply,
                       obs::TraceContext trace = {}, tenant::TenantId tenant = tenant::kNoTenant);

  // Round trip into the server's *degraded* read path (src/resilience/):
  // bounded admission behind a load-shed gate, bounded escalating deadlines.
  // Replies kUnavailable (+ wait hint) when the gate sheds.
  void SendDegradedGet(int node, uint64_t key, DurationNs deadline,
                       std::function<void(Status, DurationNs)> on_reply,
                       obs::TraceContext trace = {});

  // Starts a trace for one logical get(): a fresh deterministic request id
  // when a tracer is attached and enabled, an untraced context otherwise.
  obs::TraceContext BeginTrace();

  // Records the client-side failover hop (retrying another replica after an
  // EBUSY or a timeout) as an instant span.
  void RecordFailover(const obs::TraceContext& trace);

  std::vector<int> Replicas(uint64_t key) const { return cluster_->ReplicasOf(key); }

  // Tenant-aware replica set: the tenant's placement group when a map is
  // attached and the tenant is known (a dense-array copy, no allocation —
  // the per-request lookup alloc_test gates), the key's ring replicas
  // otherwise.
  tenant::ReplicaGroup RouteReplicas(uint64_t key, tenant::TenantId tenant) const;

  sim::Simulator* sim_;
  cluster::Cluster* cluster_;
  Rng rng_;
  const tenant::PlacementMap* placement_ = nullptr;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_STRATEGY_H_
