// "Choose-the-fastest-replica" strategies (§7.8.3):
//
//  * SnitchStrategy — Cassandra-style dynamic snitching [1]: per-replica
//    latency scores refreshed on a coarse interval; requests go to the
//    replica with the best score as of the last refresh. Effective for
//    stable imbalance, ineffective for sub-second burstiness.
//  * C3Strategy — C3's adaptive replica selection [52], simplified: replicas
//    are ranked by an EWMA response time plus a *cubic* penalty on the
//    client's outstanding requests to that replica (the cubic replica
//    scoring of the C3 paper; we omit its server-side rate control and use
//    client-observed state only, which matches the information available in
//    our deployment model).

#ifndef MITTOS_CLIENT_ADAPTIVE_H_
#define MITTOS_CLIENT_ADAPTIVE_H_

#include <vector>

#include "src/client/strategy.h"

namespace mitt::client {

class SnitchStrategy : public GetStrategy {
 public:
  struct Options {
    double ewma_alpha = 0.2;
    // Scores used for routing are only refreshed this often (Cassandra
    // resets/recomputes snitch scores on a coarse interval).
    DurationNs update_interval = Millis(100);
    // Cassandra's dynamic-snitch badness threshold: when replica scores are
    // within this relative band, requests spread round-robin/randomly
    // instead of herding onto the single best replica.
    double badness_threshold = 0.1;
  };

  SnitchStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                 const Options& options);
  ~SnitchStrategy() override;

  std::string_view name() const override { return "Snitch"; }
  void Get(uint64_t key, GetDoneFn done) override;

 private:
  void RefreshTick();

  Options options_;
  std::vector<double> ewma_ns_;      // Live per-node EWMA.
  std::vector<double> snapshot_ns_;  // Scores actually used for routing.
  sim::EventId refresh_event_ = sim::kInvalidEventId;
};

class C3Strategy : public GetStrategy {
 public:
  struct Options {
    double ewma_alpha = 0.3;
    DurationNs score_decay = Seconds(2);
  };

  C3Strategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
             const Options& options);

  std::string_view name() const override { return "C3"; }
  void Get(uint64_t key, GetDoneFn done) override;

 private:
  double Score(int node) const;

  Options options_;
  std::vector<double> ewma_ns_;
  std::vector<int> outstanding_;
  // A stale score decays toward the fleet mean, so a replica that recovered
  // from a burst is re-tried within a few seconds (without this, min-score
  // selection never revisits a once-slow replica).
  std::vector<TimeNs> last_update_;
};

}  // namespace mitt::client

#endif  // MITTOS_CLIENT_ADAPTIVE_H_
