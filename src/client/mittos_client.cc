#include "src/client/mittos_client.h"

#include <memory>

namespace mitt::client {

MittosStrategy::MittosStrategy(sim::Simulator* sim, cluster::Cluster* cluster, uint64_t seed,
                               const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {}

void MittosStrategy::Get(uint64_t key, GetDoneFn done) {
  Attempt(key, GetContext{}, 0, std::make_shared<GetDoneFn>(std::move(done)), BeginTrace());
}

void MittosStrategy::Get(uint64_t key, const GetContext& ctx, GetDoneFn done) {
  Attempt(key, ctx, 0, std::make_shared<GetDoneFn>(std::move(done)), BeginTrace());
}

void MittosStrategy::Attempt(uint64_t key, GetContext ctx, int try_index,
                             std::shared_ptr<GetDoneFn> done, obs::TraceContext trace) {
  const tenant::ReplicaGroup replicas = RouteReplicas(key, ctx.tenant);
  const bool last_try = try_index + 1 >= replicas.size;
  // The last retry disables the deadline; otherwise users could get IO errors
  // even though data is available (§5, modification (3)).
  const DurationNs slo = ctx.deadline > 0 ? ctx.deadline : options_.deadline;
  const DurationNs deadline = last_try ? sched::kNoDeadline : slo;
  if (last_try) {
    ++unbounded_tries_;
  }
  const int node = replicas.node[static_cast<size_t>(try_index)];
  SendGet(
      node, key, deadline,
      [this, key, ctx, try_index, done, trace](Status status) {
        if (status.busy()) {
          ++ebusy_failovers_;
          RecordFailover(trace);
          Attempt(key, ctx, try_index + 1, done, trace);  // Instant, exceptionless failover.
          return;
        }
        (*done)({status, try_index + 1});
      },
      trace, ctx.tenant);
}

struct MittosWaitStrategy::Attempt {
  uint64_t key = 0;
  tenant::TenantId tenant = tenant::kNoTenant;
  DurationNs deadline = 0;
  std::vector<int> replicas;
  std::vector<DurationNs> hints;  // Predicted wait per replica (on EBUSY).
  size_t next = 0;
  GetDoneFn done;
  obs::TraceContext trace;
};

MittosWaitStrategy::MittosWaitStrategy(sim::Simulator* sim, cluster::Cluster* cluster,
                                       uint64_t seed, const Options& options)
    : GetStrategy(sim, cluster, seed), options_(options) {}

void MittosWaitStrategy::Get(uint64_t key, GetDoneFn done) {
  Get(key, GetContext{}, std::move(done));
}

void MittosWaitStrategy::Get(uint64_t key, const GetContext& ctx, GetDoneFn done) {
  auto attempt = std::make_shared<Attempt>();
  attempt->key = key;
  attempt->tenant = ctx.tenant;
  attempt->deadline = ctx.deadline > 0 ? ctx.deadline : options_.deadline;
  const tenant::ReplicaGroup group = RouteReplicas(key, ctx.tenant);
  attempt->replicas.assign(group.node, group.node + group.size);
  attempt->hints.assign(attempt->replicas.size(), 0);
  attempt->done = std::move(done);
  attempt->trace = BeginTrace();
  TryReplica(std::move(attempt));
}

void MittosWaitStrategy::TryReplica(std::shared_ptr<Attempt> attempt) {
  if (attempt->next >= attempt->replicas.size()) {
    // Every replica rejected: the paper's proposed 4th retry, informed by the
    // wait hints — go wait on the *least busy* node, deadline disabled.
    ++informed_last_tries_;
    size_t best = 0;
    for (size_t i = 1; i < attempt->hints.size(); ++i) {
      if (attempt->hints[i] < attempt->hints[best]) {
        best = i;
      }
    }
    const int node = attempt->replicas[best];
    const int tries = static_cast<int>(attempt->replicas.size()) + 1;
    SendGet(
        node, attempt->key, sched::kNoDeadline,
        [attempt, tries](Status status) { attempt->done({status, tries}); }, attempt->trace,
        attempt->tenant);
    return;
  }
  const size_t index = attempt->next++;
  const int node = attempt->replicas[index];
  SendGetWithHint(
      node, attempt->key, attempt->deadline,
      [this, attempt, index](Status status, DurationNs hint) {
        if (status.busy()) {
          ++ebusy_failovers_;
          attempt->hints[index] = hint;
          RecordFailover(attempt->trace);
          TryReplica(attempt);
          return;
        }
        attempt->done({status, static_cast<int>(index) + 1});
      },
      attempt->trace, attempt->tenant);
}

}  // namespace mitt::client
