// Synthetic stand-ins for the five Microsoft production block traces used by
// the prediction-accuracy study (§7.6: DAPPS, DTRS, EXCH, LMBE, TPCC from
// the SNIA IOTTA repository [35][3]).
//
// The real traces are not redistributable here, so each trace is generated
// from the published characterization knobs that matter to a latency
// predictor: arrival burstiness (ON/OFF with heavy-tailed bursts), read/write
// mix, IO size mix, and spatial locality (hot regions + sequential runs).
// Parameters follow the qualitative shape reported for each server class
// (e.g. Exchange is write-heavy and bursty; TPC-C is small-random-IO with
// high concurrency; the dev-tools release server is read-mostly).
//
// The generator is exposed as a trace::TraceCursor (SyntheticTraceCursor),
// so synthetic and imported on-disk traces replay through one code path —
// the accuracy benches, TraceReplayDriver, and bench_replay all consume
// cursors and never care which kind. GenerateTrace() remains as a
// drain-the-cursor convenience and yields the exact record sequence it
// always has.

#ifndef MITTOS_WORKLOAD_SYNTHETIC_TRACE_H_
#define MITTOS_WORKLOAD_SYNTHETIC_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/trace/cursor.h"
#include "src/trace/writer.h"

namespace mitt::workload {

struct TraceRecord {
  TimeNs at = 0;
  int64_t offset = 0;
  int64_t size = 4096;
  bool is_read = true;
};

struct TraceProfile {
  std::string name;
  double read_ratio = 0.7;
  DurationNs mean_interarrival = Millis(2);
  // Burstiness: fraction of time in bursts, and how much denser bursts are.
  double burst_time_fraction = 0.2;
  double burst_speedup = 8.0;
  // IO sizes (bytes) with selection weights.
  std::vector<std::pair<int64_t, double>> size_mix = {{4096, 0.6}, {8192, 0.25}, {65536, 0.15}};
  // Spatial locality: probability the next IO continues sequentially, and the
  // number of zipfian-popular hot regions otherwise.
  double sequential_prob = 0.2;
  int hot_regions = 64;
  int64_t span_bytes = 200LL << 30;
};

// The five paper traces ("the busiest 5 minutes" of each).
const std::vector<TraceProfile>& PaperTraceProfiles();

// Streams a profile's deterministic record sequence one event at a time, in
// constant memory — the on-demand form of GenerateTrace. Every yielded event
// carries `stream` as its stream id. Reset() replays the identical sequence.
class SyntheticTraceCursor : public trace::TraceCursor {
 public:
  SyntheticTraceCursor(const TraceProfile& profile, DurationNs duration, uint64_t seed,
                       uint32_t stream = 0);

  bool Next(trace::TraceEvent* out) override;
  void Reset() override;

 private:
  const TraceProfile profile_;
  const DurationNs duration_;
  const uint64_t mixed_seed_;
  const uint32_t stream_;
  const int64_t region_size_;
  const double mean_iat_;

  Rng rng_;
  ZipfianGenerator region_zipf_;
  TimeNs t_ = 0;
  int64_t last_end_ = 0;
  bool in_burst_ = false;
  TimeNs phase_end_ = 0;
  bool done_ = false;
};

// Generates a deterministic trace of `duration` from the profile.
std::vector<TraceRecord> GenerateTrace(const TraceProfile& profile, DurationNs duration,
                                       uint64_t seed);

// Merges one cursor per profile (stream id = profile index, per-stream seed
// derived from `seed`) into an on-disk trace, k-way by arrival time with
// stream index breaking ties. Stops after `max_records` if nonzero. The
// caller still owns writer->Finish(). Returns false on writer failure.
bool WriteSyntheticMix(const std::vector<TraceProfile>& profiles, DurationNs duration,
                       uint64_t seed, uint64_t max_records, trace::TraceWriter* writer);

}  // namespace mitt::workload

#endif  // MITTOS_WORKLOAD_SYNTHETIC_TRACE_H_
