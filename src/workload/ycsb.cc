#include "src/workload/ycsb.h"

namespace mitt::workload {

YcsbWorkload::YcsbWorkload(const Options& options) : options_(options), rng_(options.seed) {
  if (options_.distribution == KeyDistribution::kZipfian) {
    zipf_ = std::make_unique<ZipfianGenerator>(options_.num_keys);
  }
}

YcsbWorkload::Op YcsbWorkload::Next() {
  Op op;
  op.is_read = rng_.NextDouble() < options_.read_fraction;
  if (zipf_ != nullptr) {
    // Scramble so hot keys spread over the key space (YCSB's scrambled
    // zipfian), which also spreads them across replica nodes.
    const uint64_t raw = zipf_->Next(rng_);
    op.key = (raw * 0xFD70'49FF'5E2B'226DULL + 0x9E37'79B9ULL) % options_.num_keys;
  } else {
    op.key = static_cast<uint64_t>(rng_.UniformInt(0, static_cast<int64_t>(options_.num_keys) - 1));
  }
  return op;
}

}  // namespace mitt::workload
