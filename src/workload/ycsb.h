// YCSB-style key-value workload generator (§7: "we use YCSB to generate 1KB
// key-value get() operations"). Produces a deterministic stream of get/put
// operations over a key space with uniform or zipfian popularity.

#ifndef MITTOS_WORKLOAD_YCSB_H_
#define MITTOS_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>

#include "src/common/rng.h"

namespace mitt::workload {

enum class KeyDistribution { kUniform, kZipfian };

class YcsbWorkload {
 public:
  struct Options {
    uint64_t num_keys = 1 << 20;
    double read_fraction = 1.0;  // Workload C (read-only) by default.
    KeyDistribution distribution = KeyDistribution::kZipfian;
    uint64_t seed = 1;
  };

  struct Op {
    bool is_read;
    uint64_t key;
  };

  explicit YcsbWorkload(const Options& options);

  Op Next();

  const Options& options() const { return options_; }

 private:
  Options options_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace mitt::workload

#endif  // MITTOS_WORKLOAD_YCSB_H_
