// Macrobenchmark noise tenants (§7.8.1): filebench-style fileserver, varmail
// and webserver personalities, plus a Hadoop-like batch tenant modeled on the
// Facebook 2010 job mix (periodic heavy sequential scans with heavy-tailed
// inter-job gaps). These colocate with DocStore nodes and generate realistic
// mixed read/write contention.

#ifndef MITTOS_WORKLOAD_MACRO_WORKLOAD_H_
#define MITTOS_WORKLOAD_MACRO_WORKLOAD_H_

#include <cstdint>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace mitt::workload {

enum class MacroProfile { kFileserver, kVarmail, kWebserver, kHadoop };

std::string_view MacroProfileName(MacroProfile profile);

class MacroWorkload {
 public:
  struct Options {
    MacroProfile profile = MacroProfile::kFileserver;
    int threads = 4;
    int32_t pid = 8000;
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    int8_t priority = 4;
  };

  MacroWorkload(sim::Simulator* sim, os::Os* target_os, uint64_t file, int64_t file_size,
                const Options& options, uint64_t seed);

  // Runs closed-loop tenant threads until `until` (simulated time).
  void Start(TimeNs until);

  uint64_t ios_issued() const { return ios_issued_; }

 private:
  void ThreadLoop(TimeNs until);
  void HadoopJobLoop(TimeNs until);
  void IssueOne(TimeNs until);

  sim::Simulator* sim_;
  os::Os* os_;
  uint64_t file_;
  int64_t file_size_;
  Options options_;
  Rng rng_;
  uint64_t ios_issued_ = 0;
};

}  // namespace mitt::workload

#endif  // MITTOS_WORKLOAD_MACRO_WORKLOAD_H_
