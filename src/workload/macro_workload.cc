#include "src/workload/macro_workload.h"

#include <algorithm>
#include <functional>
#include <memory>

namespace mitt::workload {

std::string_view MacroProfileName(MacroProfile profile) {
  switch (profile) {
    case MacroProfile::kFileserver:
      return "fileserver";
    case MacroProfile::kVarmail:
      return "varmail";
    case MacroProfile::kWebserver:
      return "webserver";
    case MacroProfile::kHadoop:
      return "hadoop";
  }
  return "unknown";
}

MacroWorkload::MacroWorkload(sim::Simulator* sim, os::Os* target_os, uint64_t file,
                             int64_t file_size, const Options& options, uint64_t seed)
    : sim_(sim), os_(target_os), file_(file), file_size_(file_size), options_(options),
      rng_(seed) {}

void MacroWorkload::Start(TimeNs until) {
  for (int t = 0; t < options_.threads; ++t) {
    if (options_.profile == MacroProfile::kHadoop) {
      // Stagger job arrivals.
      sim_->Schedule(static_cast<DurationNs>(rng_.Exponential(static_cast<double>(Seconds(2)))),
                     [this, until] { HadoopJobLoop(until); });
    } else {
      sim_->Schedule(rng_.UniformInt(0, Millis(5)), [this, until] { ThreadLoop(until); });
    }
  }
}

void MacroWorkload::ThreadLoop(TimeNs until) {
  if (sim_->Now() >= until) {
    return;
  }
  IssueOne(until);
}

void MacroWorkload::IssueOne(TimeNs until) {
  ++ios_issued_;
  double think_mean = 0;
  bool is_read = true;
  bool sync_write = false;
  int64_t size = 4096;

  switch (options_.profile) {
    case MacroProfile::kFileserver:
      is_read = rng_.Bernoulli(0.5);
      size = rng_.Bernoulli(0.4) ? (1 << 20) : (64 << 10);
      sync_write = rng_.Bernoulli(0.1);
      think_mean = static_cast<double>(Millis(5));
      break;
    case MacroProfile::kVarmail:
      is_read = rng_.Bernoulli(0.5);
      size = rng_.Bernoulli(0.5) ? 4096 : (16 << 10);
      sync_write = true;  // fsync-per-mail behaviour.
      think_mean = static_cast<double>(Millis(3));
      break;
    case MacroProfile::kWebserver:
      is_read = rng_.Bernoulli(0.95);
      size = rng_.Bernoulli(0.7) ? (8 << 10) : (64 << 10);
      think_mean = static_cast<double>(kMillisecond);
      break;
    case MacroProfile::kHadoop:
      break;  // Handled by HadoopJobLoop.
  }

  auto next = [this, until, think_mean](Status) {
    const auto think = static_cast<DurationNs>(rng_.Exponential(think_mean));
    sim_->Schedule(think, [this, until] { ThreadLoop(until); });
  };

  const int64_t offset = rng_.UniformInt(0, std::max<int64_t>(1, file_size_ - size - 1));
  if (is_read) {
    os::Os::ReadArgs args;
    args.file = file_;
    args.offset = offset;
    args.size = size;
    args.pid = options_.pid;
    args.io_class = options_.io_class;
    args.priority = options_.priority;
    args.bypass_cache = true;
    os_->Read(args, next);
  } else {
    os::Os::WriteArgs args;
    args.file = file_;
    args.offset = offset;
    args.size = size;
    args.pid = options_.pid;
    args.io_class = options_.io_class;
    args.priority = options_.priority;
    args.sync = sync_write;
    os_->Write(args, next);
  }
}

void MacroWorkload::HadoopJobLoop(TimeNs until) {
  if (sim_->Now() >= until) {
    return;
  }
  // One map-task scan: a burst of large sequential reads (FB-2010 jobs are
  // dominated by small jobs with heavy-tailed large scans).
  const int chunks =
      rng_.Bernoulli(0.8) ? static_cast<int>(rng_.UniformInt(4, 16))
                          : static_cast<int>(rng_.UniformInt(64, 192));
  const int64_t chunk_size = 1 << 20;
  const int64_t start =
      rng_.UniformInt(0, std::max<int64_t>(1, file_size_ - chunks * chunk_size - 1));

  // The chain's pending IO callback holds the strong ref; the lambda only
  // keeps a weak self-reference (a strong one would be a cycle and leak).
  auto step = std::make_shared<std::function<void(int)>>();
  *step = [this, until, chunks, chunk_size, start,
           wstep = std::weak_ptr<std::function<void(int)>>(step)](int i) {
    if (i >= chunks || sim_->Now() >= until) {
      // Job done; next job after a heavy-tailed gap.
      const auto gap = static_cast<DurationNs>(
          rng_.BoundedPareto(static_cast<double>(Millis(500)),
                             static_cast<double>(Seconds(20)), 1.2));
      sim_->Schedule(gap, [this, until] { HadoopJobLoop(until); });
      return;
    }
    ++ios_issued_;
    os::Os::ReadArgs args;
    args.file = file_;
    args.offset = start + static_cast<int64_t>(i) * chunk_size;
    args.size = chunk_size;
    args.pid = options_.pid;
    args.io_class = options_.io_class;
    args.priority = options_.priority;
    args.bypass_cache = true;
    os_->Read(args, [step = wstep.lock(), i](Status) { (*step)(i + 1); });
  };
  (*step)(0);
}

}  // namespace mitt::workload
