#include "src/workload/synthetic_trace.h"

namespace mitt::workload {

const std::vector<TraceProfile>& PaperTraceProfiles() {
  static const std::vector<TraceProfile>* profiles = [] {
    auto* p = new std::vector<TraceProfile>;
    // DAPPS: hosted application servers — moderate rate, mixed sizes.
    p->push_back({.name = "DAPPS",
                  .read_ratio = 0.56,
                  .mean_interarrival = Millis(3),
                  .burst_time_fraction = 0.25,
                  .burst_speedup = 6.0,
                  .size_mix = {{4096, 0.4}, {8192, 0.3}, {32768, 0.2}, {65536, 0.1}},
                  .sequential_prob = 0.25,
                  .hot_regions = 64});
    // DTRS: developer tools release server — read-mostly distribution server.
    p->push_back({.name = "DTRS",
                  .read_ratio = 0.91,
                  .mean_interarrival = Millis(2),
                  .burst_time_fraction = 0.2,
                  .burst_speedup = 5.0,
                  .size_mix = {{4096, 0.3}, {16384, 0.3}, {65536, 0.4}},
                  .sequential_prob = 0.45,
                  .hot_regions = 32});
    // EXCH: Exchange mail server — write-heavy, small random IO, bursty.
    p->push_back({.name = "EXCH",
                  .read_ratio = 0.43,
                  .mean_interarrival = Micros(1500),
                  .burst_time_fraction = 0.3,
                  .burst_speedup = 10.0,
                  .size_mix = {{4096, 0.5}, {8192, 0.35}, {32768, 0.15}},
                  .sequential_prob = 0.1,
                  .hot_regions = 128});
    // LMBE: live maps back-end — large sequential reads with bursts.
    p->push_back({.name = "LMBE",
                  .read_ratio = 0.78,
                  .mean_interarrival = Millis(2),
                  .burst_time_fraction = 0.25,
                  .burst_speedup = 7.0,
                  .size_mix = {{8192, 0.3}, {65536, 0.5}, {262144, 0.2}},
                  .sequential_prob = 0.55,
                  .hot_regions = 16});
    // TPCC: OLTP — small random IOs, high concurrency, moderate writes.
    p->push_back({.name = "TPCC",
                  .read_ratio = 0.65,
                  .mean_interarrival = kMillisecond,
                  .burst_time_fraction = 0.35,
                  .burst_speedup = 8.0,
                  .size_mix = {{4096, 0.8}, {8192, 0.2}},
                  .sequential_prob = 0.05,
                  .hot_regions = 256});
    return p;
  }();
  return *profiles;
}

std::vector<TraceRecord> GenerateTrace(const TraceProfile& profile, DurationNs duration,
                                       uint64_t seed) {
  Rng rng(seed ^ (profile.name.empty() ? 0 : static_cast<uint64_t>(profile.name[0]) * 131));
  ZipfianGenerator region_zipf(static_cast<uint64_t>(profile.hot_regions), 0.9);

  std::vector<TraceRecord> out;
  const int64_t region_size = profile.span_bytes / profile.hot_regions;

  TimeNs t = 0;
  int64_t last_end = 0;
  bool in_burst = false;
  TimeNs phase_end = 0;
  const double mean_iat = static_cast<double>(profile.mean_interarrival);

  while (t < duration) {
    // ON/OFF burst phases with exponential phase lengths.
    if (t >= phase_end) {
      in_burst = rng.NextDouble() < profile.burst_time_fraction;
      const double mean_phase =
          in_burst ? static_cast<double>(Millis(300)) : static_cast<double>(Millis(900));
      phase_end = t + static_cast<DurationNs>(rng.Exponential(mean_phase));
    }
    const double rate_scale = in_burst ? 1.0 / profile.burst_speedup : 1.0;
    t += static_cast<DurationNs>(rng.Exponential(mean_iat * rate_scale)) + 1;
    if (t >= duration) {
      break;
    }

    TraceRecord rec;
    rec.at = t;
    rec.is_read = rng.NextDouble() < profile.read_ratio;

    // Size mix.
    double pick = rng.NextDouble();
    rec.size = profile.size_mix.back().first;
    for (const auto& [size, weight] : profile.size_mix) {
      if (pick < weight) {
        rec.size = size;
        break;
      }
      pick -= weight;
    }

    // Spatial locality: continue sequentially or jump to a hot region.
    if (rng.NextDouble() < profile.sequential_prob) {
      rec.offset = last_end;
    } else {
      const auto region = static_cast<int64_t>(region_zipf.Next(rng));
      rec.offset = region * region_size + rng.UniformInt(0, region_size - rec.size - 1);
    }
    last_end = rec.offset + rec.size;
    out.push_back(rec);
  }
  return out;
}

}  // namespace mitt::workload
