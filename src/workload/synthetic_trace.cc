#include "src/workload/synthetic_trace.h"

namespace mitt::workload {

const std::vector<TraceProfile>& PaperTraceProfiles() {
  static const std::vector<TraceProfile>* profiles = [] {
    auto* p = new std::vector<TraceProfile>;
    // DAPPS: hosted application servers — moderate rate, mixed sizes.
    p->push_back({.name = "DAPPS",
                  .read_ratio = 0.56,
                  .mean_interarrival = Millis(3),
                  .burst_time_fraction = 0.25,
                  .burst_speedup = 6.0,
                  .size_mix = {{4096, 0.4}, {8192, 0.3}, {32768, 0.2}, {65536, 0.1}},
                  .sequential_prob = 0.25,
                  .hot_regions = 64});
    // DTRS: developer tools release server — read-mostly distribution server.
    p->push_back({.name = "DTRS",
                  .read_ratio = 0.91,
                  .mean_interarrival = Millis(2),
                  .burst_time_fraction = 0.2,
                  .burst_speedup = 5.0,
                  .size_mix = {{4096, 0.3}, {16384, 0.3}, {65536, 0.4}},
                  .sequential_prob = 0.45,
                  .hot_regions = 32});
    // EXCH: Exchange mail server — write-heavy, small random IO, bursty.
    p->push_back({.name = "EXCH",
                  .read_ratio = 0.43,
                  .mean_interarrival = Micros(1500),
                  .burst_time_fraction = 0.3,
                  .burst_speedup = 10.0,
                  .size_mix = {{4096, 0.5}, {8192, 0.35}, {32768, 0.15}},
                  .sequential_prob = 0.1,
                  .hot_regions = 128});
    // LMBE: live maps back-end — large sequential reads with bursts.
    p->push_back({.name = "LMBE",
                  .read_ratio = 0.78,
                  .mean_interarrival = Millis(2),
                  .burst_time_fraction = 0.25,
                  .burst_speedup = 7.0,
                  .size_mix = {{8192, 0.3}, {65536, 0.5}, {262144, 0.2}},
                  .sequential_prob = 0.55,
                  .hot_regions = 16});
    // TPCC: OLTP — small random IOs, high concurrency, moderate writes.
    p->push_back({.name = "TPCC",
                  .read_ratio = 0.65,
                  .mean_interarrival = kMillisecond,
                  .burst_time_fraction = 0.35,
                  .burst_speedup = 8.0,
                  .size_mix = {{4096, 0.8}, {8192, 0.2}},
                  .sequential_prob = 0.05,
                  .hot_regions = 256});
    return p;
  }();
  return *profiles;
}

SyntheticTraceCursor::SyntheticTraceCursor(const TraceProfile& profile, DurationNs duration,
                                           uint64_t seed, uint32_t stream)
    : profile_(profile),
      duration_(duration),
      mixed_seed_(seed ^ (profile.name.empty()
                              ? 0
                              : static_cast<uint64_t>(profile.name[0]) * 131)),
      stream_(stream),
      region_size_(profile.span_bytes / profile.hot_regions),
      mean_iat_(static_cast<double>(profile.mean_interarrival)),
      rng_(mixed_seed_),
      region_zipf_(static_cast<uint64_t>(profile.hot_regions), 0.9) {}

void SyntheticTraceCursor::Reset() {
  rng_ = Rng(mixed_seed_);
  t_ = 0;
  last_end_ = 0;
  in_burst_ = false;
  phase_end_ = 0;
  done_ = false;
}

// One iteration of the historical GenerateTrace loop. The RNG call order is
// the contract: phase draw(s), interarrival, read/write, size, locality —
// any reordering changes every seeded trace in the repo.
bool SyntheticTraceCursor::Next(trace::TraceEvent* out) {
  if (done_ || t_ >= duration_) {
    done_ = true;
    return false;
  }

  // ON/OFF burst phases with exponential phase lengths.
  if (t_ >= phase_end_) {
    in_burst_ = rng_.NextDouble() < profile_.burst_time_fraction;
    const double mean_phase =
        in_burst_ ? static_cast<double>(Millis(300)) : static_cast<double>(Millis(900));
    phase_end_ = t_ + static_cast<DurationNs>(rng_.Exponential(mean_phase));
  }
  const double rate_scale = in_burst_ ? 1.0 / profile_.burst_speedup : 1.0;
  t_ += static_cast<DurationNs>(rng_.Exponential(mean_iat_ * rate_scale)) + 1;
  if (t_ >= duration_) {
    done_ = true;
    return false;
  }

  out->at = t_;
  out->stream = stream_;
  out->op = rng_.NextDouble() < profile_.read_ratio ? trace::kOpRead : trace::kOpWrite;

  // Size mix.
  double pick = rng_.NextDouble();
  int64_t size = profile_.size_mix.back().first;
  for (const auto& [candidate, weight] : profile_.size_mix) {
    if (pick < weight) {
      size = candidate;
      break;
    }
    pick -= weight;
  }
  out->len = static_cast<uint32_t>(size);

  // Spatial locality: continue sequentially or jump to a hot region.
  if (rng_.NextDouble() < profile_.sequential_prob) {
    out->offset = last_end_;
  } else {
    const auto region = static_cast<int64_t>(region_zipf_.Next(rng_));
    out->offset = region * region_size_ + rng_.UniformInt(0, region_size_ - size - 1);
  }
  last_end_ = out->offset + size;
  return true;
}

std::vector<TraceRecord> GenerateTrace(const TraceProfile& profile, DurationNs duration,
                                       uint64_t seed) {
  SyntheticTraceCursor cursor(profile, duration, seed);
  std::vector<TraceRecord> out;
  trace::TraceEvent event;
  while (cursor.Next(&event)) {
    out.push_back({.at = event.at,
                   .offset = event.offset,
                   .size = static_cast<int64_t>(event.len),
                   .is_read = event.op == trace::kOpRead});
  }
  return out;
}

bool WriteSyntheticMix(const std::vector<TraceProfile>& profiles, DurationNs duration,
                       uint64_t seed, uint64_t max_records, trace::TraceWriter* writer) {
  // K-way merge over one cursor per profile. K is small (five paper traces),
  // so a linear min-scan beats a heap and keeps tie-breaking obvious:
  // earliest arrival wins, lowest stream index on ties.
  std::vector<SyntheticTraceCursor> cursors;
  cursors.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    cursors.emplace_back(profiles[i], duration, seed + 0x9E3779B97F4A7C15ULL * i,
                         static_cast<uint32_t>(i));
  }
  std::vector<trace::TraceEvent> heads(cursors.size());
  std::vector<bool> live(cursors.size(), false);
  for (size_t i = 0; i < cursors.size(); ++i) {
    live[i] = cursors[i].Next(&heads[i]);
  }

  uint64_t written = 0;
  for (;;) {
    size_t best = cursors.size();
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (live[i] && (best == cursors.size() || heads[i].at < heads[best].at)) {
        best = i;
      }
    }
    if (best == cursors.size()) {
      break;
    }
    if (!writer->Append(heads[best])) {
      return false;
    }
    if (max_records > 0 && ++written >= max_records) {
      break;
    }
    live[best] = cursors[best].Next(&heads[best]);
  }
  return true;
}

}  // namespace mitt::workload
