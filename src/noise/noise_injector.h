// Noise injectors: tenant processes that reproduce the paper's noisy
// neighbors (§7.1, §7.2).
//
//  * IoNoiseInjector keeps N concurrent IO streams against the node's OS for
//    the duration of each episode (disk noise: "two concurrent 1MB reads";
//    SSD noise: "a thread of 64KB writes").
//  * CacheNoiseInjector evicts a fraction of the OS cache at each episode
//    (memory-space contention / VM ballooning, §7.1, §7.4).

#ifndef MITTOS_NOISE_NOISE_INJECTOR_H_
#define MITTOS_NOISE_NOISE_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/noise/ec2_noise.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace mitt::noise {

class IoNoiseInjector {
 public:
  struct Options {
    int64_t io_size = 1 << 20;          // 1 MB reads by default (§7.2).
    int streams_per_intensity = 2;      // Concurrent IOs per intensity unit.
    sched::IoOp op = sched::IoOp::kRead;
    int32_t pid = 9000;
    sched::IoClass io_class = sched::IoClass::kBestEffort;
    int8_t priority = 4;
  };

  // The injector issues IOs against `file` (size `file_size`) on `target_os`,
  // following `schedule`. Episodes are replayed exactly; within an episode
  // each stream issues back-to-back random IOs (closed loop).
  IoNoiseInjector(sim::Simulator* sim, os::Os* target_os, uint64_t file, int64_t file_size,
                  std::vector<NoiseEpisode> schedule, const Options& options, uint64_t seed);

  void Start();

  // True while inside an episode — the ground-truth busyness signal used by
  // Fig. 13's "when EBUSY is returned" timeline.
  bool noisy_now() const { return active_streams_ > 0; }
  uint64_t ios_issued() const { return ios_issued_; }

 private:
  void BeginEpisode(const NoiseEpisode& episode);
  void StreamLoop(TimeNs episode_end);

  sim::Simulator* sim_;
  os::Os* os_;
  uint64_t file_;
  int64_t file_size_;
  std::vector<NoiseEpisode> schedule_;
  Options options_;
  Rng rng_;
  int active_streams_ = 0;
  uint64_t ios_issued_ = 0;
};

// Memory-space contention: at each episode start, a neighbor's balloon
// steals memory and a fraction of `file`'s pages get swapped out; when the
// episode ends the pressure releases and the pages swap back in (the OS
// keeps swapping in the background, §4.4). Accesses *during* an episode see
// misses — the transient cache-miss bursts of Fig. 3c.
class CacheNoiseInjector {
 public:
  struct Options {
    uint64_t file = 0;
    int64_t file_size = 0;
    // Fraction of the file's pages dropped per intensity unit.
    double drop_fraction_per_intensity = 0.08;
    // Delay after episode end until the working set is resident again.
    DurationNs restore_delay = Millis(50);
    bool restore = true;
  };

  CacheNoiseInjector(sim::Simulator* sim, os::Os* target_os, std::vector<NoiseEpisode> schedule,
                     const Options& options, uint64_t seed);

  void Start();

  uint64_t episodes_run() const { return episodes_run_; }

 private:
  void RunEpisode(const NoiseEpisode& episode);

  sim::Simulator* sim_;
  os::Os* os_;
  std::vector<NoiseEpisode> schedule_;
  Options options_;
  Rng rng_;
  uint64_t episodes_run_ = 0;
};

}  // namespace mitt::noise

#endif  // MITTOS_NOISE_NOISE_INJECTOR_H_
