#include "src/noise/noise_injector.h"

#include <algorithm>

namespace mitt::noise {

IoNoiseInjector::IoNoiseInjector(sim::Simulator* sim, os::Os* target_os, uint64_t file,
                                 int64_t file_size, std::vector<NoiseEpisode> schedule,
                                 const Options& options, uint64_t seed)
    : sim_(sim),
      os_(target_os),
      file_(file),
      file_size_(file_size),
      schedule_(std::move(schedule)),
      options_(options),
      rng_(seed) {}

void IoNoiseInjector::Start() {
  for (const NoiseEpisode& ep : schedule_) {
    sim_->ScheduleAt(ep.start, [this, ep] { BeginEpisode(ep); });
  }
}

void IoNoiseInjector::BeginEpisode(const NoiseEpisode& episode) {
  const TimeNs end = episode.start + episode.duration;
  const int streams = episode.intensity * options_.streams_per_intensity;
  for (int s = 0; s < streams; ++s) {
    ++active_streams_;
    StreamLoop(end);
  }
}

void IoNoiseInjector::StreamLoop(TimeNs episode_end) {
  if (sim_->Now() >= episode_end) {
    --active_streams_;
    return;
  }
  const int64_t max_offset = std::max<int64_t>(1, file_size_ - options_.io_size);
  ++ios_issued_;
  if (options_.op == sched::IoOp::kRead) {
    os::Os::ReadArgs args;
    args.file = file_;
    args.offset = rng_.UniformInt(0, max_offset);
    args.size = options_.io_size;
    args.pid = options_.pid;
    args.io_class = options_.io_class;
    args.priority = options_.priority;
    args.bypass_cache = true;  // Always hit the device.
    os_->Read(args, [this, episode_end](Status) { StreamLoop(episode_end); });
  } else {
    os::Os::WriteArgs args;
    args.file = file_;
    args.offset = rng_.UniformInt(0, max_offset);
    args.size = options_.io_size;
    args.pid = options_.pid;
    args.io_class = options_.io_class;
    args.priority = options_.priority;
    args.sync = true;  // Contend at the device, not the buffer cache.
    os_->Write(args, [this, episode_end](Status) { StreamLoop(episode_end); });
  }
}

CacheNoiseInjector::CacheNoiseInjector(sim::Simulator* sim, os::Os* target_os,
                                       std::vector<NoiseEpisode> schedule,
                                       const Options& options, uint64_t seed)
    : sim_(sim), os_(target_os), schedule_(std::move(schedule)), options_(options), rng_(seed) {}

void CacheNoiseInjector::Start() {
  for (const NoiseEpisode& ep : schedule_) {
    sim_->ScheduleAt(ep.start, [this, ep] { RunEpisode(ep); });
  }
}

void CacheNoiseInjector::RunEpisode(const NoiseEpisode& episode) {
  ++episodes_run_;
  const double fraction =
      std::min(1.0, options_.drop_fraction_per_intensity * episode.intensity);
  const int64_t page = os_->cache().params().page_size;
  const int64_t total_pages = std::max<int64_t>(1, options_.file_size / page);
  const auto pages_to_drop =
      static_cast<int64_t>(static_cast<double>(total_pages) * fraction);
  // Drop contiguous chunks (the balloon reclaims runs of pages), remember
  // them, and swap them back in after the pressure releases.
  std::vector<std::pair<int64_t, int64_t>> dropped;  // (offset, len)
  constexpr int64_t kChunkPages = 256;
  for (int64_t remaining = pages_to_drop; remaining > 0; remaining -= kChunkPages) {
    const int64_t len_pages = std::min<int64_t>(kChunkPages, remaining);
    const int64_t start_page = rng_.UniformInt(0, total_pages - len_pages);
    os_->cache().EvictRange(options_.file, start_page * page, len_pages * page);
    dropped.emplace_back(start_page * page, len_pages * page);
  }
  if (options_.restore) {
    sim_->ScheduleDaemon(
        episode.duration + options_.restore_delay, [this, dropped = std::move(dropped)] {
          for (const auto& [offset, len] : dropped) {
            os_->Prefault(options_.file, offset, len);
          }
        });
  }
}

}  // namespace mitt::noise
