#include "src/noise/ec2_noise.h"

#include <algorithm>
#include <cmath>

namespace mitt::noise {

Ec2NoiseModel::Ec2NoiseModel(const Ec2NoiseParams& params, uint64_t seed)
    : params_(params), seed_(seed) {}

std::vector<NoiseEpisode> Ec2NoiseModel::GenerateSchedule(int node, TimeNs horizon) const {
  Rng rng(seed_ ^ (0x9E37'79B9'7F4A'7C15ULL * static_cast<uint64_t>(node + 1)));
  std::vector<NoiseEpisode> episodes;

  const bool hot = rng.NextDouble() < params_.hot_node_fraction;
  const double mean_off =
      static_cast<double>(params_.mean_off) * (hot ? params_.hot_node_off_scale : 1.0);
  // Lognormal parameterization: mean = exp(mu + sigma^2/2).
  const double sigma = params_.off_sigma;
  const double mu = std::log(mean_off) - sigma * sigma / 2.0;

  TimeNs t = static_cast<TimeNs>(rng.LogNormal(mu, sigma));
  while (t < horizon) {
    NoiseEpisode ep;
    ep.start = t;
    ep.duration = static_cast<DurationNs>(
        rng.BoundedPareto(static_cast<double>(params_.min_on),
                          static_cast<double>(params_.max_on), params_.on_alpha));
    ep.intensity = 1;
    while (ep.intensity < params_.max_intensity && rng.Bernoulli(params_.extra_stream_prob)) {
      ++ep.intensity;
    }
    episodes.push_back(ep);
    t = ep.start + ep.duration + static_cast<TimeNs>(rng.LogNormal(mu, sigma));
  }
  return episodes;
}

double Ec2NoiseModel::BusyFraction(int node, TimeNs horizon) const {
  const auto episodes = GenerateSchedule(node, horizon);
  DurationNs busy = 0;
  for (const NoiseEpisode& ep : episodes) {
    busy += std::min(ep.duration, horizon - ep.start);
  }
  return static_cast<double>(busy) / static_cast<double>(horizon);
}

}  // namespace mitt::noise
