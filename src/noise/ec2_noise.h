// Synthetic reproduction of the paper's EC2 "millisecond dynamism" study
// (§6, Figure 3). The real study sampled disk/SSD/cache latency in 20
// multi-tenant EC2 instances for 8 hours; we cannot rent 2017-era EC2, so we
// generate per-node noisy-neighbor episode schedules calibrated to the three
// published observations:
//
//   #1  Long tails appear consistently: per-node busy fraction of a few
//       percent, so probe latency CDFs deviate around p97.
//   #2  Contention is bursty with irregular inter-arrivals: OFF periods are
//       heavy-tailed (lognormal, seconds-scale), ON periods are sub-second
//       to ~2 s bursts, and per-node rates differ (some nodes are "hotter").
//   #3  Only 1-2 of 20 nodes are busy simultaneously: independent schedules
//       with ~2-3% busy fraction give P(1 busy) ~ 25%, P(2) ~ 5%.
//
// The same schedules drive the noise injectors of §7 ("we take a 5-minute
// timeslice from the EC2 disk latency distribution ... a multi-threaded noise
// injector emulates busy neighbors at the right timing").

#ifndef MITTOS_NOISE_EC2_NOISE_H_
#define MITTOS_NOISE_EC2_NOISE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::noise {

struct NoiseEpisode {
  TimeNs start = 0;
  DurationNs duration = 0;
  // Number of concurrent noisy-neighbor IO streams during the episode.
  int intensity = 1;
};

struct Ec2NoiseParams {
  // OFF-period (quiet gap) distribution: lognormal with this mean; sigma
  // controls burstiness (higher -> more irregular inter-arrivals).
  DurationNs mean_off = Seconds(12);
  double off_sigma = 1.2;

  // ON-period (burst) length: bounded Pareto, sub-second typical.
  DurationNs min_on = Millis(150);
  DurationNs max_on = Seconds(2);
  double on_alpha = 1.3;

  // Episode intensity: 1 + geometric-ish extra streams.
  int max_intensity = 4;
  double extra_stream_prob = 0.35;

  // A fraction of nodes are persistently hotter (shorter OFF periods).
  double hot_node_fraction = 0.15;
  double hot_node_off_scale = 0.4;
};

class Ec2NoiseModel {
 public:
  Ec2NoiseModel(const Ec2NoiseParams& params, uint64_t seed);

  // Deterministic episode schedule for `node` over [0, horizon). The same
  // (seed, node, horizon) always yields the same schedule, so different
  // client strategies can be compared under byte-identical noise replays.
  std::vector<NoiseEpisode> GenerateSchedule(int node, TimeNs horizon) const;

  // Fraction of [0, horizon) that `node` spends inside episodes.
  double BusyFraction(int node, TimeNs horizon) const;

  const Ec2NoiseParams& params() const { return params_; }

 private:
  Ec2NoiseParams params_;
  uint64_t seed_;
};

}  // namespace mitt::noise

#endif  // MITTOS_NOISE_EC2_NOISE_H_
