// In-memory write buffer of the LSM tree (LevelDB's memtable). We simulate
// storage, so values are represented by their sizes only; correctness of the
// read path is what matters (which layer a key is found in, and which IOs a
// lookup costs).

#ifndef MITTOS_LSM_MEMTABLE_H_
#define MITTOS_LSM_MEMTABLE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mitt::lsm {

class MemTable {
 public:
  MemTable() = default;

  void Put(uint64_t key, uint32_t value_size);
  bool Contains(uint64_t key) const;

  size_t entry_count() const { return entries_.size(); }
  int64_t approximate_bytes() const { return approximate_bytes_; }
  bool empty() const { return entries_.empty(); }

  // Sorted keys, for flushing into an SSTable.
  std::vector<uint64_t> SortedKeys() const;

  void Clear();

 private:
  std::map<uint64_t, uint32_t> entries_;
  int64_t approximate_bytes_ = 0;
};

}  // namespace mitt::lsm

#endif  // MITTOS_LSM_MEMTABLE_H_
