// Small Bloom filter over 64-bit keys, as used by LevelDB-style SSTables to
// skip tables that cannot contain a key.

#ifndef MITTOS_LSM_BLOOM_H_
#define MITTOS_LSM_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mitt::lsm {

class BloomFilter {
 public:
  // `bits_per_key` ~ 10 gives ~1% false positives.
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  size_t bit_count() const { return bits_.size(); }

 private:
  static uint64_t Mix(uint64_t key, uint64_t salt);

  int hashes_;
  std::vector<bool> bits_;
};

}  // namespace mitt::lsm

#endif  // MITTOS_LSM_BLOOM_H_
