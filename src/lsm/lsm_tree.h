// LevelDB-style LSM tree on top of one MittOS instance (§5's second
// application).
//
// Writes: WAL append (sync, absorbed by the drive's NVRAM) + memtable
// insert; a full memtable flushes to a new L0 SSTable with buffered writes.
// Reads: memtable, then L0 tables newest-first, then L1+ by key range; each
// candidate table costs one data-block read issued through read(...,
// deadline) — the first EBUSY aborts the whole lookup so the caller (Riak)
// can fail over to another replica.
// Compaction: when L0 grows past a threshold, L0 and overlapping L1 tables
// merge into new L1 tables; compaction IO runs at Idle class with no
// deadline, providing the paper's background-maintenance contention.

#ifndef MITTOS_LSM_LSM_TREE_H_
#define MITTOS_LSM_LSM_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/lsm/memtable.h"
#include "src/lsm/sstable.h"
#include "src/os/os.h"
#include "src/sim/simulator.h"

namespace mitt::lsm {

class LsmTree {
 public:
  struct Options {
    int64_t memtable_flush_bytes = 4 << 20;
    int l0_compaction_trigger = 4;
    int64_t block_size = 4096;
    int keys_per_block = 4;
    uint32_t value_size = 1024;
    int32_t server_pid = 1;
    bool wal_sync = true;
  };

  LsmTree(sim::Simulator* sim, os::Os* node_os, const Options& options);

  // Insert/update. `done` fires after the WAL write and memtable insert.
  void Put(uint64_t key, std::function<void(Status)> done);

  // Point lookup with an SLO. Calls `done` with:
  //   kOk        — found (or definitively absent after all candidate tables);
  //   kNotFound  — key in no layer;
  //   kEbusy     — some required data-block IO was rejected by MittOS.
  void Get(uint64_t key, DurationNs deadline, std::function<void(Status)> done);

  // Bulk-loads sorted keys directly into L1 tables (dataset setup), bypassing
  // the write path; optionally pre-warms nothing (reads hit the device).
  void BulkLoad(const std::vector<uint64_t>& sorted_keys);

  size_t level_size(int level) const;
  size_t memtable_entries() const { return memtable_.entry_count(); }
  uint64_t compactions_done() const { return compactions_done_; }
  uint64_t flushes_done() const { return flushes_done_; }
  bool compaction_running() const { return compaction_running_; }

 private:
  void MaybeFlushMemtable();
  void MaybeStartCompaction();
  void FinishCompaction(std::vector<std::shared_ptr<SsTable>> new_l1);
  std::shared_ptr<SsTable> BuildTable(std::vector<uint64_t> sorted_keys, int level);
  // Continues the lookup at candidate index `idx` of `candidates`.
  void GetFromTables(uint64_t key, DurationNs deadline,
                     std::shared_ptr<std::vector<std::shared_ptr<SsTable>>> candidates,
                     size_t idx, std::function<void(Status)> done);

  sim::Simulator* sim_;
  os::Os* os_;
  Options options_;

  MemTable memtable_;
  uint64_t wal_file_ = 0;
  int64_t wal_offset_ = 0;
  uint64_t next_table_id_ = 1;

  // levels_[0] is L0 (newest first); levels_[1] is L1 (sorted, disjoint).
  std::vector<std::vector<std::shared_ptr<SsTable>>> levels_;
  bool compaction_running_ = false;
  uint64_t compactions_done_ = 0;
  uint64_t flushes_done_ = 0;
};

}  // namespace mitt::lsm

#endif  // MITTOS_LSM_LSM_TREE_H_
