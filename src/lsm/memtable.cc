#include "src/lsm/memtable.h"

namespace mitt::lsm {

void MemTable::Put(uint64_t key, uint32_t value_size) {
  const auto [it, inserted] = entries_.insert_or_assign(key, value_size);
  (void)it;
  if (inserted) {
    approximate_bytes_ += static_cast<int64_t>(sizeof(uint64_t)) + value_size;
  }
}

bool MemTable::Contains(uint64_t key) const { return entries_.count(key) > 0; }

std::vector<uint64_t> MemTable::SortedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, size] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

void MemTable::Clear() {
  entries_.clear();
  approximate_bytes_ = 0;
}

}  // namespace mitt::lsm
