#include "src/lsm/bloom.h"

#include <algorithm>

namespace mitt::lsm {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  hashes_ = std::max(1, static_cast<int>(bits_per_key * 0.69));  // ln2 * bits/key.
  hashes_ = std::min(hashes_, 8);
  bits_.assign(std::max<size_t>(64, expected_keys * static_cast<size_t>(bits_per_key)), false);
}

uint64_t BloomFilter::Mix(uint64_t key, uint64_t salt) {
  uint64_t z = key + salt * 0x9E37'79B9'7F4A'7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBULL;
  return z ^ (z >> 31);
}

void BloomFilter::Add(uint64_t key) {
  for (int h = 0; h < hashes_; ++h) {
    bits_[Mix(key, static_cast<uint64_t>(h) + 1) % bits_.size()] = true;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (int h = 0; h < hashes_; ++h) {
    if (!bits_[Mix(key, static_cast<uint64_t>(h) + 1) % bits_.size()]) {
      return false;
    }
  }
  return true;
}

}  // namespace mitt::lsm
