#include "src/lsm/sstable.h"

#include <algorithm>

namespace mitt::lsm {

SsTable::SsTable(uint64_t table_id, uint64_t file, std::vector<uint64_t> sorted_keys, int level,
                 int64_t block_size, int keys_per_block)
    : table_id_(table_id),
      file_(file),
      keys_(std::move(sorted_keys)),
      level_(level),
      block_size_(block_size),
      keys_per_block_(keys_per_block),
      bloom_(keys_.size()) {
  for (const uint64_t key : keys_) {
    bloom_.Add(key);
  }
}

int64_t SsTable::size_bytes() const {
  const auto blocks =
      (static_cast<int64_t>(keys_.size()) + keys_per_block_ - 1) / keys_per_block_;
  return blocks * block_size_;
}

bool SsTable::MayContain(uint64_t key) const {
  if (keys_.empty() || key < keys_.front() || key > keys_.back()) {
    return false;
  }
  return bloom_.MayContain(key);
}

bool SsTable::Lookup(uint64_t key, int64_t* block_offset) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) {
    return false;
  }
  const auto rank = static_cast<int64_t>(it - keys_.begin());
  *block_offset = rank / keys_per_block_ * block_size_;
  return true;
}

}  // namespace mitt::lsm
