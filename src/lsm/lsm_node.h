// One Riak-style storage node: an LsmTree (LevelDB) over its own MittOS
// instance, with handler CPU accounting, servicing get/put requests arriving
// over the network (§5, §7.8.4).

#ifndef MITTOS_LSM_LSM_NODE_H_
#define MITTOS_LSM_LSM_NODE_H_

#include <functional>
#include <memory>

#include "src/cluster/cpu_pool.h"
#include "src/lsm/lsm_tree.h"
#include "src/os/os.h"
#include "src/resilience/admission_gate.h"
#include "src/sim/simulator.h"

namespace mitt::lsm {

class LsmNode {
 public:
  struct Options {
    os::OsOptions os;
    LsmTree::Options lsm;
    int cpu_cores = 8;
    DurationNs handler_cpu = Micros(30);

    // Degraded (all-replicas-busy) read path (src/resilience/): bounded
    // admission + bounded escalating deadlines, mirroring DocStoreNode.
    resilience::AdmissionGateOptions admission;
    int degraded_max_attempts = 10;
    DurationNs degraded_deadline_cap = Seconds(2);
  };

  LsmNode(sim::Simulator* sim, int node_id, const Options& options);

  void HandleGet(uint64_t key, DurationNs deadline, std::function<void(Status)> reply);

  // Degraded read behind the shed gate: kUnavailable when over capacity;
  // admitted reads retry EBUSY with escalated (capped, never disabled)
  // deadlines. The LSM read path carries no per-request wait hints, so the
  // inter-attempt wait uses the device floor.
  void HandleDegradedGet(uint64_t key, DurationNs deadline, std::function<void(Status)> reply);

  void HandlePut(uint64_t key, std::function<void(Status)> reply);

  int node_id() const { return node_id_; }
  os::Os& os() { return *os_; }
  LsmTree& lsm() { return *lsm_; }
  uint64_t ebusy_returned() const { return ebusy_returned_; }
  uint64_t degraded_admits() const { return degraded_gate_.admits(); }
  uint64_t degraded_sheds() const { return degraded_gate_.sheds(); }
  DurationNs degraded_max_deadline() const { return degraded_max_deadline_; }

 private:
  void DegradedAttempt(uint64_t key, DurationNs deadline, int attempt,
                       std::function<void(Status)> reply);

  sim::Simulator* sim_;
  int node_id_;
  Options options_;
  std::unique_ptr<os::Os> os_;
  std::unique_ptr<cluster::CpuPool> cpu_;
  std::unique_ptr<LsmTree> lsm_;
  uint64_t ebusy_returned_ = 0;
  resilience::AdmissionGate degraded_gate_;
  DurationNs degraded_max_deadline_ = 0;
};

}  // namespace mitt::lsm

#endif  // MITTOS_LSM_LSM_NODE_H_
