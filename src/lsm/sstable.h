// Immutable sorted table (LevelDB SSTable), stored as one file on the node's
// OS. The in-memory side carries the sorted key list, a Bloom filter, and the
// block index; reading a key costs one data-block IO through the SLO-aware
// read path — which is exactly where MittOS' EBUSY surfaces inside LevelDB
// (§5, §7.8.4).

#ifndef MITTOS_LSM_SSTABLE_H_
#define MITTOS_LSM_SSTABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/lsm/bloom.h"

namespace mitt::lsm {

class SsTable {
 public:
  // `file` must already be created on the node's OS with space for
  // keys.size() entries. Keys must be sorted.
  SsTable(uint64_t table_id, uint64_t file, std::vector<uint64_t> sorted_keys, int level,
          int64_t block_size = 4096, int keys_per_block = 4);

  uint64_t table_id() const { return table_id_; }
  uint64_t file() const { return file_; }
  int level() const { return level_; }
  size_t entry_count() const { return keys_.size(); }
  uint64_t min_key() const { return keys_.front(); }
  uint64_t max_key() const { return keys_.back(); }
  int64_t block_size() const { return block_size_; }
  int64_t size_bytes() const;
  const std::vector<uint64_t>& keys() const { return keys_; }

  // True if `key` is within [min, max] and passes the Bloom filter.
  bool MayContain(uint64_t key) const;

  // Exact membership plus the data-block offset a read must fetch.
  // Returns false if the key is not in the table (index lookup, no IO).
  bool Lookup(uint64_t key, int64_t* block_offset) const;

 private:
  uint64_t table_id_;
  uint64_t file_;
  std::vector<uint64_t> keys_;
  int level_;
  int64_t block_size_;
  int keys_per_block_;
  BloomFilter bloom_;
};

}  // namespace mitt::lsm

#endif  // MITTOS_LSM_SSTABLE_H_
