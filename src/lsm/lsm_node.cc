#include "src/lsm/lsm_node.h"

namespace mitt::lsm {

LsmNode::LsmNode(sim::Simulator* sim, int node_id, const Options& options)
    : sim_(sim), node_id_(node_id), options_(options) {
  os::OsOptions os_options = options_.os;
  os_options.seed ^= static_cast<uint64_t>(node_id) * 0x2000'0003ULL;
  os_ = std::make_unique<os::Os>(sim_, os_options);
  cpu_ = std::make_unique<cluster::CpuPool>(sim_, options_.cpu_cores);
  lsm_ = std::make_unique<LsmTree>(sim_, os_.get(), options_.lsm);
}

void LsmNode::HandleGet(uint64_t key, DurationNs deadline,
                        std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, deadline, reply = std::move(reply)] {
    lsm_->Get(key, deadline, [this, reply = std::move(reply)](Status s) {
      if (s.busy()) {
        ++ebusy_returned_;
      }
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

void LsmNode::HandlePut(uint64_t key, std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, reply = std::move(reply)] {
    lsm_->Put(key, [this, reply = std::move(reply)](Status s) {
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

}  // namespace mitt::lsm
