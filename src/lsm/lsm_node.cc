#include "src/lsm/lsm_node.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/resilience/deadline_budget.h"

namespace mitt::lsm {

LsmNode::LsmNode(sim::Simulator* sim, int node_id, const Options& options)
    : sim_(sim), node_id_(node_id), options_(options), degraded_gate_(options.admission) {
  os::OsOptions os_options = options_.os;
  os_options.seed ^= static_cast<uint64_t>(node_id) * 0x2000'0003ULL;
  os_ = std::make_unique<os::Os>(sim_, os_options);
  cpu_ = std::make_unique<cluster::CpuPool>(sim_, options_.cpu_cores);
  lsm_ = std::make_unique<LsmTree>(sim_, os_.get(), options_.lsm);
}

void LsmNode::HandleGet(uint64_t key, DurationNs deadline,
                        std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, deadline, reply = std::move(reply)] {
    lsm_->Get(key, deadline, [this, reply = std::move(reply)](Status s) {
      if (s.busy()) {
        ++ebusy_returned_;
      }
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

void LsmNode::HandleDegradedGet(uint64_t key, DurationNs deadline,
                                std::function<void(Status)> reply) {
  const obs::TraceContext gate_trace{0, node_id_};
  if (!degraded_gate_.TryAdmit()) {
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordInstant(obs::SpanKind::kShed, gate_trace, sim_->Now());
    }
    if (obs::MetricsRegistry* m = sim_->metrics()) {
      m->counter("resilience_shed_total", node_id_).Add();
    }
    cpu_->Execute(options_.handler_cpu / 2,
                  [reply = std::move(reply)] { reply(Status::Unavailable()); });
    return;
  }
  if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
    tr->RecordInstant(obs::SpanKind::kDegradedGet, gate_trace, sim_->Now());
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    m->counter("resilience_degraded_admit_total", node_id_).Add();
  }
  DurationNs first = resilience::ClampDeadline(deadline);
  if (first < 0 || first > options_.degraded_deadline_cap) {
    first = options_.degraded_deadline_cap;
  }
  cpu_->Execute(options_.handler_cpu / 2,
                [this, key, first, reply = std::move(reply)]() mutable {
                  DegradedAttempt(key, first, 0, std::move(reply));
                });
}

void LsmNode::DegradedAttempt(uint64_t key, DurationNs deadline, int attempt,
                              std::function<void(Status)> reply) {
  degraded_max_deadline_ = std::max(degraded_max_deadline_, deadline);
  lsm_->Get(key, deadline, [this, key, deadline, attempt,
                            reply = std::move(reply)](Status s) mutable {
    if (!s.busy() || attempt + 1 >= options_.degraded_max_attempts) {
      degraded_gate_.Release();
      cpu_->Execute(options_.handler_cpu / 2, [reply = std::move(reply), s] { reply(s); });
      return;
    }
    // The LSM path exposes no per-request wait hint; wait out the device
    // floor and escalate the (still bounded) deadline.
    const DurationNs wait = os_->MinDeviceLatency();
    const DurationNs next = std::min(std::max(deadline * 2, wait + deadline),
                                     options_.degraded_deadline_cap);
    sim_->Schedule(wait, [this, key, next, attempt, reply = std::move(reply)]() mutable {
      DegradedAttempt(key, next, attempt + 1, std::move(reply));
    });
  });
}

void LsmNode::HandlePut(uint64_t key, std::function<void(Status)> reply) {
  cpu_->Execute(options_.handler_cpu / 2, [this, key, reply = std::move(reply)] {
    lsm_->Put(key, [this, reply = std::move(reply)](Status s) {
      cpu_->Execute(options_.handler_cpu / 2, [reply, s] { reply(s); });
    });
  });
}

}  // namespace mitt::lsm
