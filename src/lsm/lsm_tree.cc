#include "src/lsm/lsm_tree.h"

#include <algorithm>
#include <set>

namespace mitt::lsm {

LsmTree::LsmTree(sim::Simulator* sim, os::Os* node_os, const Options& options)
    : sim_(sim), os_(node_os), options_(options) {
  levels_.resize(2);
  wal_file_ = os_->CreateFile(64 << 20);
}

std::shared_ptr<SsTable> LsmTree::BuildTable(std::vector<uint64_t> sorted_keys, int level) {
  const auto blocks = (static_cast<int64_t>(sorted_keys.size()) + options_.keys_per_block - 1) /
                      options_.keys_per_block;
  const uint64_t file = os_->CreateFile(std::max<int64_t>(1, blocks) * options_.block_size);
  return std::make_shared<SsTable>(next_table_id_++, file, std::move(sorted_keys), level,
                                   options_.block_size, options_.keys_per_block);
}

void LsmTree::Put(uint64_t key, std::function<void(Status)> done) {
  os::Os::WriteArgs wal;
  wal.file = wal_file_;
  wal.offset = wal_offset_;
  wal.size = static_cast<int64_t>(sizeof(uint64_t)) + options_.value_size;
  wal.pid = options_.server_pid;
  wal.sync = options_.wal_sync;
  wal_offset_ = (wal_offset_ + wal.size) % (48 << 20);  // Circular log region.
  os_->Write(wal, [this, key, done = std::move(done)](Status s) {
    memtable_.Put(key, options_.value_size);
    MaybeFlushMemtable();
    if (done) {
      done(s);
    }
  });
}

void LsmTree::MaybeFlushMemtable() {
  if (memtable_.approximate_bytes() < options_.memtable_flush_bytes) {
    return;
  }
  auto table = BuildTable(memtable_.SortedKeys(), /*level=*/0);
  memtable_.Clear();
  ++flushes_done_;
  // Write the table contents as buffered (background-flushed) IO.
  os::Os::WriteArgs w;
  w.file = table->file();
  w.offset = 0;
  w.size = table->size_bytes();
  w.pid = options_.server_pid;
  w.sync = false;
  os_->Write(w, nullptr);
  levels_[0].insert(levels_[0].begin(), table);  // Newest first.
  MaybeStartCompaction();
}

void LsmTree::MaybeStartCompaction() {
  if (compaction_running_ ||
      levels_[0].size() < static_cast<size_t>(options_.l0_compaction_trigger)) {
    return;
  }
  compaction_running_ = true;

  // Merge every L0 table with all of L1 (single-shard simplification of
  // LevelDB's range-overlap selection; our tables span wide key ranges, so
  // overlap is near-total anyway).
  std::set<uint64_t> merged;
  int64_t input_bytes = 0;
  for (const auto& level : levels_) {
    for (const auto& table : level) {
      merged.insert(table->keys().begin(), table->keys().end());
      input_bytes += table->size_bytes();
    }
  }
  std::vector<uint64_t> all(merged.begin(), merged.end());

  // Split into ~8MB output tables.
  const auto keys_per_out = static_cast<size_t>(
      (8LL << 20) / options_.block_size * static_cast<int64_t>(options_.keys_per_block));
  std::vector<std::shared_ptr<SsTable>> new_l1;
  for (size_t i = 0; i < all.size(); i += keys_per_out) {
    const size_t end = std::min(all.size(), i + keys_per_out);
    new_l1.push_back(
        BuildTable(std::vector<uint64_t>(all.begin() + static_cast<int64_t>(i),
                                         all.begin() + static_cast<int64_t>(end)),
                   /*level=*/1));
  }

  // Compaction IO: read all inputs, write all outputs, chained at Idle class
  // so foreground reads keep CFQ priority — yet the device still sees the
  // load (the §3.3 "maintenance jobs" noise source).
  struct CompactionIo {
    uint64_t file;
    int64_t offset;
    int64_t size;
    bool write;
  };
  auto ios = std::make_shared<std::vector<CompactionIo>>();
  constexpr int64_t kChunk = 256 << 10;
  for (const auto& level : levels_) {
    for (const auto& table : level) {
      for (int64_t off = 0; off < table->size_bytes(); off += kChunk) {
        ios->push_back({table->file(), off, std::min(kChunk, table->size_bytes() - off), false});
      }
    }
  }
  for (const auto& table : new_l1) {
    for (int64_t off = 0; off < table->size_bytes(); off += kChunk) {
      ios->push_back({table->file(), off, std::min(kChunk, table->size_bytes() - off), true});
    }
  }

  // The pending IO callback holds the strong ref; the lambda only keeps a
  // weak self-reference (a strong one would be a cycle and leak).
  auto step = std::make_shared<std::function<void(size_t)>>();
  *step = [this, ios, new_l1,
           wstep = std::weak_ptr<std::function<void(size_t)>>(step)](size_t idx) {
    if (idx >= ios->size()) {
      FinishCompaction(new_l1);
      return;
    }
    const auto step = wstep.lock();
    const CompactionIo& io = (*ios)[idx];
    if (io.write) {
      os::Os::WriteArgs w;
      w.file = io.file;
      w.offset = io.offset;
      w.size = io.size;
      w.pid = options_.server_pid + 1000;  // Compaction thread.
      w.io_class = sched::IoClass::kIdle;
      w.priority = 7;
      w.sync = true;
      os_->Write(w, [step, idx](Status) { (*step)(idx + 1); });
    } else {
      os::Os::ReadArgs r;
      r.file = io.file;
      r.offset = io.offset;
      r.size = io.size;
      r.pid = options_.server_pid + 1000;
      r.io_class = sched::IoClass::kIdle;
      r.priority = 7;
      r.bypass_cache = true;
      os_->Read(r, [step, idx](Status) { (*step)(idx + 1); });
    }
  };
  (*step)(0);
}

void LsmTree::FinishCompaction(std::vector<std::shared_ptr<SsTable>> new_l1) {
  levels_[0].clear();
  levels_[1] = std::move(new_l1);
  compaction_running_ = false;
  ++compactions_done_;
  MaybeStartCompaction();
}

void LsmTree::BulkLoad(const std::vector<uint64_t>& sorted_keys) {
  const auto keys_per_out = static_cast<size_t>(
      (8LL << 20) / options_.block_size * static_cast<int64_t>(options_.keys_per_block));
  for (size_t i = 0; i < sorted_keys.size(); i += keys_per_out) {
    const size_t end = std::min(sorted_keys.size(), i + keys_per_out);
    levels_[1].push_back(
        BuildTable(std::vector<uint64_t>(sorted_keys.begin() + static_cast<int64_t>(i),
                                         sorted_keys.begin() + static_cast<int64_t>(end)),
                   /*level=*/1));
  }
}

size_t LsmTree::level_size(int level) const {
  return levels_[static_cast<size_t>(level)].size();
}

void LsmTree::Get(uint64_t key, DurationNs deadline, std::function<void(Status)> done) {
  if (memtable_.Contains(key)) {
    done(Status::Ok());  // Served from memory; cost is negligible vs the net.
    return;
  }
  // Snapshot the candidate tables (compaction may swap levels mid-lookup).
  auto candidates = std::make_shared<std::vector<std::shared_ptr<SsTable>>>();
  for (const auto& table : levels_[0]) {
    if (table->MayContain(key)) {
      candidates->push_back(table);
    }
  }
  for (const auto& table : levels_[1]) {
    if (table->MayContain(key)) {
      candidates->push_back(table);
    }
  }
  GetFromTables(key, deadline, std::move(candidates), 0, std::move(done));
}

void LsmTree::GetFromTables(uint64_t key, DurationNs deadline,
                            std::shared_ptr<std::vector<std::shared_ptr<SsTable>>> candidates,
                            size_t idx, std::function<void(Status)> done) {
  if (idx >= candidates->size()) {
    done(Status::NotFound());
    return;
  }
  const auto& table = (*candidates)[idx];
  int64_t block_offset = 0;
  if (!table->Lookup(key, &block_offset)) {
    // Bloom false positive; try the next candidate without IO.
    GetFromTables(key, deadline, std::move(candidates), idx + 1, std::move(done));
    return;
  }
  os::Os::ReadArgs r;
  r.file = table->file();
  r.offset = block_offset;
  r.size = options_.block_size;
  r.deadline = deadline;
  r.pid = options_.server_pid;
  os_->Read(r, [done = std::move(done)](Status s) {
    // Either the block read succeeded (key found) or MittOS rejected it; both
    // terminate the lookup (an EBUSY must propagate to the replication layer,
    // §5: "the returned EBUSY is propagated to Riak where the read failover
    // takes place").
    done(s);
  });
}

}  // namespace mitt::lsm
