// Tenant -> replica-group placement map.
//
// Routing state shared between the client strategies (readers, per request)
// and the placement controller (writer, per control tick). The map is a flat
// `num_tenants x replication` array of node ids, primary first; `group()`
// returns a fixed-size value type so the per-request lookup allocates
// nothing.
//
// Concurrency contract (the reason this is safe without atomics): shard
// threads only read the map while the sharded engine is *running* a window,
// and the controller only writes it from a quiesced `ScheduleGlobal` event —
// the same barrier discipline fault injection uses. Reads and writes are
// therefore never concurrent, and every shard observes a migration at the
// same simulated instant, which keeps runs bit-identical at any
// MITT_INTRA_WORKERS x MITT_TRIAL_WORKERS.

#ifndef MITTOS_TENANT_PLACEMENT_H_
#define MITTOS_TENANT_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/tenant/tenant.h"

namespace mitt::tenant {

// A tenant's replica set, primary first. Value type: returned by copy from
// the hot-path lookup, so no heap traffic per request.
struct ReplicaGroup {
  static constexpr int kMaxReplication = 8;
  int32_t node[kMaxReplication] = {};
  int size = 0;
};

class PlacementMap {
 public:
  PlacementMap(uint32_t num_tenants, int replication)
      : replication_(replication),
        nodes_(static_cast<size_t>(num_tenants) * static_cast<size_t>(replication), -1) {}

  // Naive uniform placement: each tenant's primary is a seeded hash of its
  // id over the ring, replicas on the ring successors — placement that knows
  // nothing about rates, SLOs, or node health (the baseline bench_tenant
  // melts).
  static PlacementMap Uniform(uint32_t num_tenants, int num_nodes, int replication,
                              uint64_t seed);

  uint32_t num_tenants() const {
    return replication_ == 0 ? 0 : static_cast<uint32_t>(nodes_.size() / replication_);
  }
  int replication() const { return replication_; }

  // --- Per-request hot path: dense indexing, no allocation ---
  int32_t primary(TenantId t) const { return nodes_[Index(t)]; }
  ReplicaGroup group(TenantId t) const {
    ReplicaGroup g;
    const size_t base = Index(t);
    g.size = replication_;
    for (int r = 0; r < replication_; ++r) {
      g.node[r] = nodes_[base + static_cast<size_t>(r)];
    }
    return g;
  }

  // --- Controller-side mutation (quiesced only; see header comment) ---
  void Assign(TenantId t, const ReplicaGroup& g) {
    const size_t base = Index(t);
    for (int r = 0; r < replication_; ++r) {
      nodes_[base + static_cast<size_t>(r)] = g.node[r];
    }
    ++version_;
  }

  // Migration epoch: bumped once per Assign, so tests can assert exactly how
  // many placements moved.
  uint64_t version() const { return version_; }

 private:
  size_t Index(TenantId t) const {
    return static_cast<size_t>(t) * static_cast<size_t>(replication_);
  }

  int replication_;
  std::vector<int32_t> nodes_;
  uint64_t version_ = 0;
};

}  // namespace mitt::tenant

#endif  // MITTOS_TENANT_PLACEMENT_H_
