#include "src/tenant/workload.h"

#include <algorithm>
#include <utility>

namespace mitt::tenant {

TenantLoadDriver::TenantLoadDriver(sim::Simulator* sim, const TenantDirectory* directory,
                                   const Options& options, DispatchFn dispatch)
    : sim_(sim),
      directory_(directory),
      options_(options),
      dispatch_(std::move(dispatch)),
      rng_(options.seed ^ (0xA5A5'0000ULL + static_cast<uint64_t>(options.shard))) {
  const uint32_t n = directory->num_tenants();
  const int num_shards = options_.num_shards > 1 ? options_.num_shards : 1;
  for (TenantId t = 0; t < n; ++t) {
    if (static_cast<int>(t % static_cast<uint32_t>(num_shards)) != options_.shard &&
        num_shards > 1) {
      continue;
    }
    const double rate = directory->spec(t).rate_hz;
    if (rate <= 0) {
      continue;
    }
    owned_.push_back(t);
    total_rate_hz_ += rate;
    rate_prefix_.push_back(total_rate_hz_);
  }
}

void TenantLoadDriver::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (owned_.empty() || total_rate_hz_ <= 0) {
    done_ = true;
    return;
  }
  PumpNext();
}

void TenantLoadDriver::PumpNext() {
  // Next arrival of the merged (superposed) tenant processes: exponential at
  // the combined rate, then a rate-weighted tenant draw. Statistically
  // identical to per-tenant Poisson processes, but one timer instead of
  // thousands.
  const double gap_s = rng_.Exponential(1.0 / total_rate_hz_);
  next_at_ += static_cast<TimeNs>(gap_s * 1e9);
  if (next_at_ >= options_.warmup + options_.duration) {
    done_ = true;
    return;
  }
  const double draw = rng_.NextDouble() * total_rate_hz_;
  const size_t idx = static_cast<size_t>(
      std::lower_bound(rate_prefix_.begin(), rate_prefix_.end(), draw) - rate_prefix_.begin());
  const TenantId t = owned_[idx < owned_.size() ? idx : owned_.size() - 1];
  const TenantSpec& spec = directory_->spec(t);
  pending_tenant_ = t;
  pending_key_ =
      spec.key_base +
      (spec.key_span > 1
           ? static_cast<uint64_t>(rng_.UniformInt(0, static_cast<int64_t>(spec.key_span) - 1))
           : 0);
  pending_measured_ = next_at_ >= options_.warmup;
  // One in-flight arrival: the capture is a single pointer, so the event
  // slots into the simulator pool without allocating.
  sim_->ScheduleAt(next_at_, [this] { Fire(); });
}

void TenantLoadDriver::Fire() {
  ++dispatched_;
  if (pending_measured_) {
    ++measured_;
  }
  dispatch_(pending_tenant_, pending_key_, pending_measured_);
  PumpNext();
}

}  // namespace mitt::tenant
