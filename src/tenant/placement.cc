#include "src/tenant/placement.h"

namespace mitt::tenant {

namespace {
// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

PlacementMap PlacementMap::Uniform(uint32_t num_tenants, int num_nodes, int replication,
                                   uint64_t seed) {
  PlacementMap map(num_tenants, replication);
  for (TenantId t = 0; t < num_tenants; ++t) {
    ReplicaGroup g;
    g.size = replication;
    const int primary =
        static_cast<int>(Mix(seed ^ (static_cast<uint64_t>(t) + 1)) %
                         static_cast<uint64_t>(num_nodes));
    for (int r = 0; r < replication; ++r) {
      g.node[r] = (primary + r) % num_nodes;
    }
    map.Assign(t, g);
  }
  map.version_ = 0;  // Initial placement is epoch 0, not num_tenants moves.
  return map;
}

}  // namespace mitt::tenant
