// PlacementController: cluster-level SLO-aware consolidation / rebalancing
// (Serifos direction, ROADMAP item 4).
//
// A control loop over the predictors' O(1) aggregates. Each node's scheduler
// already maintains cumulative wait sums and dispatch counts for free
// (sched::SchedObs); the controller probes them at a fixed cadence, diffs
// consecutive probes into per-window deltas, and treats
//
//     pressure_i = d(wait_sum) / d(dispatches)
//
// as node i's mean imposed queueing delay for the window — the same quantity
// the Mitt* predictors estimate per request, aggregated. Windows also feed a
// controller-owned resilience::ReplicaHealthTracker (batch OnWindow), so an
// EBUSY storm or fail-slow latency opens the node's breaker and marks it
// unplaceable even when raw pressure looks survivable.
//
// A node is *hot* when its pressure exceeds `overload_factor` x the cluster
// mean (with enough window dispatches to trust the number) or its breaker is
// open. Hot nodes are drained tenant-by-tenant — strictest SLO class first,
// then highest measured window rate (whales move first because moving one
// whale fixes more pressure than moving a hundred mice) — onto the
// least-loaded healthy nodes, capped per tick, with a per-tenant cooldown so
// placements do not thrash.
//
// Determinism: every tick runs as a quiesced sim::ShardedEngine global event
// (plain daemon event on an unsharded Simulator), so all shards observe each
// migration at the same simulated instant; inputs are scheduler aggregates
// at the barrier plus the controller's own seeded state, making runs
// bit-identical at any MITT_INTRA_WORKERS x MITT_TRIAL_WORKERS. See
// DESIGN.md §4i.

#ifndef MITTOS_TENANT_CONTROLLER_H_
#define MITTOS_TENANT_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/time.h"
#include "src/resilience/replica_health.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulator.h"
#include "src/tenant/placement.h"
#include "src/tenant/tenant.h"

namespace mitt::tenant {

// One node's cumulative counters at probe time. The controller keeps the
// previous probe and works on deltas; `tenant_gets` is a borrowed span of
// per-tenant cumulative get counts (may be null when the node does not do
// tenant accounting).
struct NodeProbe {
  uint64_t wait_sum_ns = 0;
  uint64_t dispatches = 0;
  uint64_t rejects = 0;
  uint64_t gets = 0;
  uint64_t ebusy = 0;
  const uint64_t* tenant_gets = nullptr;
  uint32_t tenant_count = 0;
};

struct PlacementControllerOptions {
  DurationNs period = Millis(200);
  // First tick fires at start time + period (Start() stamps the start).
  double overload_factor = 2.0;
  // Windows with fewer dispatches than this cannot mark a node hot (the
  // pressure estimate is noise at tiny denominators).
  uint64_t min_window_dispatches = 16;
  int max_migrations_per_tick = 64;
  // A migrated tenant is pinned for this many ticks.
  int tenant_cooldown_ticks = 3;
  // Absolute pressure below which a node is never hot, whatever the ratio to
  // the mean (keeps idle clusters from rebalancing on microscopic waits).
  DurationNs pressure_floor = Micros(500);
  // Weight-aware drain accounting: node load, keep_load, and the per-tenant
  // "whales first" drain order are measured in SloClass::weight-scaled get
  // units instead of raw gets, so a gold get (weight 4) counts 4x a bronze
  // get. A hot node then sheds the tenants that free the most *weighted*
  // capacity first, and keeps raw-get mice whose weighted footprint is small.
  // Requires per-(node, tenant) accounting in the probes; nodes without it
  // fall back to raw gets. Off = the pre-weight behavior (raw gets).
  bool weight_aware = true;
  resilience::ReplicaHealthOptions health;
  uint64_t seed = 1;
};

class PlacementController {
 public:
  using ProbeFn = std::function<NodeProbe(int node)>;

  // `engine` may be null (unsharded world: ticks become daemon events on
  // `sim`). `placement` and the probe target must outlive the controller.
  PlacementController(sim::Simulator* sim, sim::ShardedEngine* engine,
                      const TenantDirectory* directory, PlacementMap* placement, int num_nodes,
                      ProbeFn probe, const PlacementControllerOptions& options);

  // Arms the periodic tick from the current simulated time. Daemon-like:
  // ticks never keep the run alive past the workload.
  void Start();

  // Runs exactly one probe+decide round at the current simulated time, off
  // the timer. Unit-test hook; also the body of the periodic tick.
  void TickOnce();

  // --- Introspection / harvest ---
  uint64_t ticks() const { return ticks_; }
  uint64_t migrations() const { return migrations_; }
  uint64_t hot_ticks() const { return hot_ticks_; }  // Ticks that saw >=1 hot node.
  resilience::ReplicaHealthTracker& health() { return health_; }
  // Last window's pressure estimate for `node`, ns per dispatch.
  double pressure(int node) const { return pressure_[static_cast<size_t>(node)]; }

 private:
  void Arm(TimeNs when);

  sim::Simulator* sim_;
  sim::ShardedEngine* engine_;
  const TenantDirectory* directory_;
  PlacementMap* placement_;
  int num_nodes_;
  ProbeFn probe_;
  PlacementControllerOptions options_;
  resilience::ReplicaHealthTracker health_;

  struct NodeCum {
    uint64_t wait_sum_ns = 0;
    uint64_t dispatches = 0;
    uint64_t gets = 0;
    uint64_t ebusy = 0;
  };
  std::vector<NodeCum> prev_;
  // Previous per-(node, tenant) cumulative gets, flat num_nodes x num_tenants.
  std::vector<uint64_t> prev_tenant_gets_;
  // Scratch, reused across ticks.
  std::vector<double> pressure_;
  std::vector<uint64_t> win_dispatches_;
  std::vector<double> load_;            // Projected window load per node (weighted units).
  std::vector<uint64_t> tenant_rate_;   // Window gets per tenant (all nodes).
  std::vector<double> weight_;          // Per-tenant SloClass::weight, cached.
  std::vector<uint64_t> cooldown_until_tick_;
  std::vector<TenantId> drain_list_;

  uint64_t ticks_ = 0;
  uint64_t migrations_ = 0;
  uint64_t hot_ticks_ = 0;
};

}  // namespace mitt::tenant

#endif  // MITTOS_TENANT_CONTROLLER_H_
