// Tenant model (ROADMAP item 4, Serifos direction): dense tenant ids, SLO
// classes, and per-tenant arrival specs over the ring.
//
// Everything in the repo used to be one tenant with one SLO; this layer gives
// the cluster thousands of tenants, each belonging to one of a few SLO
// classes {slo, weight, priority}, with its own arrival rate and key range.
// The directory is immutable once built and every per-request lookup —
// class_of(), slo_of(), spec() — is a dense-array index: O(1), branch-light
// and allocation-free, so the client hot path can consult it per get.
//
// `BuildMix` fabricates a deterministic many-tenant population from one seed:
// Zipf-skewed arrival rates over tenant ranks (a handful of whales, a long
// tail of mice — the skew is what makes naive placement melt a node) and
// seeded class assignment by share.

#ifndef MITTOS_TENANT_TENANT_H_
#define MITTOS_TENANT_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace mitt::tenant {

using TenantId = uint32_t;
inline constexpr TenantId kNoTenant = 0xFFFFFFFFu;

// One SLO class shared by many tenants. `priority` ranks strictness (0 =
// strictest); the placement controller evacuates strict classes off a hot
// node first. `weight` scales a tenant's share of the synthetic rate mix.
struct SloClass {
  std::string name;
  DurationNs slo = Millis(20);
  double weight = 1.0;
  int8_t priority = 0;
};

// Per-tenant arrival spec: SLO class, open-loop arrival rate, and the key
// range its gets draw from (keys are `key_base + u` for u in [0, key_span)).
struct TenantSpec {
  uint32_t cls = 0;
  double rate_hz = 0.0;
  uint64_t key_base = 0;
  uint64_t key_span = 1;
};

struct MixOptions {
  uint32_t num_tenants = 2000;
  double total_rate_hz = 50000.0;
  // Zipf exponent over tenant rank for the rate mix (0 = uniform rates).
  double rate_zipf_theta = 0.9;
  uint64_t keyspace = 1 << 20;
  uint64_t keys_per_tenant = 512;
  // Classes and the fraction of tenants assigned to each (normalized).
  std::vector<SloClass> classes;
  std::vector<double> class_share;
  uint64_t seed = 1;
};

class TenantDirectory {
 public:
  uint32_t AddClass(const SloClass& cls) {
    classes_.push_back(cls);
    return static_cast<uint32_t>(classes_.size() - 1);
  }

  TenantId AddTenant(const TenantSpec& spec) {
    specs_.push_back(spec);
    return static_cast<TenantId>(specs_.size() - 1);
  }

  uint32_t num_tenants() const { return static_cast<uint32_t>(specs_.size()); }
  uint32_t num_classes() const { return static_cast<uint32_t>(classes_.size()); }

  // --- Per-request hot-path lookups: dense-array indexing, no allocation ---
  uint32_t class_of(TenantId t) const { return specs_[t].cls; }
  DurationNs slo_of(TenantId t) const { return classes_[specs_[t].cls].slo; }
  int8_t priority_of(TenantId t) const { return classes_[specs_[t].cls].priority; }
  const TenantSpec& spec(TenantId t) const { return specs_[t]; }
  const SloClass& cls(uint32_t c) const { return classes_[c]; }

  double total_rate_hz() const {
    double r = 0;
    for (const TenantSpec& s : specs_) {
      r += s.rate_hz;
    }
    return r;
  }

  // Deterministic many-tenant population: Zipf-skewed rates over rank,
  // class membership drawn by share from `seed`, key ranges striped over the
  // keyspace. Same options -> bit-identical directory.
  static TenantDirectory BuildMix(const MixOptions& options);

  // The gold/silver/bronze default mix used by benches and tests.
  static std::vector<SloClass> DefaultClasses();

 private:
  std::vector<SloClass> classes_;
  std::vector<TenantSpec> specs_;
};

}  // namespace mitt::tenant

#endif  // MITTOS_TENANT_TENANT_H_
