// TenantLoadDriver: open-loop multi-tenant arrival generation.
//
// The tenant-mix analogue of trace::TraceReplayDriver: arrivals fire at
// seeded exponential inter-arrival times for the combined rate of this
// driver's tenants, never waiting for completions. Each arrival picks a
// tenant by rate-weighted draw (binary search over precomputed prefix sums)
// and a key uniform in the tenant's key range, then hands (tenant, key,
// measured) to the dispatch callback — the harness turns that into a client
// Get with the tenant's SLO class deadline.
//
// Sharding contract (same as the replay driver): a sharded world runs one
// driver per shard and each driver owns the deterministic tenant subset
// `tenant % num_shards == shard`, with its own Rng stream seeded from (seed,
// shard). The partition is a pure function of the scenario, so results are
// bit-identical at any MITT_INTRA_WORKERS x MITT_TRIAL_WORKERS.
//
// Hot loop = one Exponential draw + one binary search + one ScheduleAt +
// the dispatch call; the closure captures only `this` and the prefix-sum
// table is built once, so the steady state allocates nothing
// (tests/alloc_test.cc gates this).

#ifndef MITTOS_TENANT_WORKLOAD_H_
#define MITTOS_TENANT_WORKLOAD_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"
#include "src/tenant/tenant.h"

namespace mitt::tenant {

class TenantLoadDriver {
 public:
  struct Options {
    // Arrivals in [0, warmup) are dispatched unmeasured (cache/queue warmup);
    // arrivals stop at warmup + duration.
    DurationNs warmup = Millis(200);
    DurationNs duration = Seconds(2);
    // This driver's partition: owns tenants with t % num_shards == shard.
    int shard = 0;
    int num_shards = 1;
    uint64_t seed = 1;
  };

  using DispatchFn = std::function<void(TenantId tenant, uint64_t key, bool measured)>;

  TenantLoadDriver(sim::Simulator* sim, const TenantDirectory* directory,
                   const Options& options, DispatchFn dispatch);

  // Schedules the first owned arrival; no-op (done() == true) when the
  // partition is empty or carries zero rate.
  void Start();

  // True once every owned arrival has fired. Open loop: the dispatcher
  // drives the sim until done() AND its own completion count catches up.
  bool done() const { return done_; }
  uint64_t dispatched() const { return dispatched_; }
  uint64_t measured_dispatched() const { return measured_; }

 private:
  void PumpNext();
  void Fire();

  sim::Simulator* sim_;
  const TenantDirectory* directory_;
  Options options_;
  DispatchFn dispatch_;
  Rng rng_;

  // Owned tenants and the cumulative rate table the weighted draw searches.
  std::vector<TenantId> owned_;
  std::vector<double> rate_prefix_;  // rate_prefix_[i] = sum of rates 0..i.
  double total_rate_hz_ = 0;

  TimeNs next_at_ = 0;
  TenantId pending_tenant_ = kNoTenant;
  uint64_t pending_key_ = 0;
  bool pending_measured_ = false;
  uint64_t dispatched_ = 0;
  uint64_t measured_ = 0;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace mitt::tenant

#endif  // MITTOS_TENANT_WORKLOAD_H_
