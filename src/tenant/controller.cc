#include "src/tenant/controller.h"

#include <algorithm>
#include <cstddef>

namespace mitt::tenant {

PlacementController::PlacementController(sim::Simulator* sim, sim::ShardedEngine* engine,
                                         const TenantDirectory* directory,
                                         PlacementMap* placement, int num_nodes, ProbeFn probe,
                                         const PlacementControllerOptions& options)
    : sim_(sim),
      engine_(engine),
      directory_(directory),
      placement_(placement),
      num_nodes_(num_nodes),
      probe_(std::move(probe)),
      options_(options),
      health_(sim, num_nodes, options.health, options.seed),
      prev_(static_cast<size_t>(num_nodes)),
      prev_tenant_gets_(static_cast<size_t>(num_nodes) * directory->num_tenants(), 0),
      pressure_(static_cast<size_t>(num_nodes), 0.0),
      win_dispatches_(static_cast<size_t>(num_nodes), 0),
      load_(static_cast<size_t>(num_nodes), 0.0),
      tenant_rate_(directory->num_tenants(), 0),
      weight_(directory->num_tenants(), 1.0),
      cooldown_until_tick_(directory->num_tenants(), 0) {
  drain_list_.reserve(directory->num_tenants());
  for (TenantId t = 0; t < directory->num_tenants(); ++t) {
    weight_[t] = directory->cls(directory->class_of(t)).weight;
  }
}

void PlacementController::Start() {
  const TimeNs now = engine_ != nullptr ? engine_->Now() : sim_->Now();
  Arm(now + options_.period);
}

void PlacementController::Arm(TimeNs when) {
  // Sharded worlds tick at a quiesced barrier (every shard parked, so the
  // probe reads and the placement writes race with nothing); unsharded
  // worlds use a plain daemon event. Both never keep the run alive.
  if (engine_ != nullptr) {
    engine_->ScheduleGlobal(when, [this, when] {
      TickOnce();
      Arm(when + options_.period);
    });
  } else {
    sim_->ScheduleDaemon(when - sim_->Now(), [this] {
      TickOnce();
      Arm(sim_->Now() + options_.period);
    });
  }
}

void PlacementController::TickOnce() {
  ++ticks_;
  const uint32_t num_tenants = directory_->num_tenants();
  std::fill(tenant_rate_.begin(), tenant_rate_.end(), 0);

  // Probe every node, diff against the previous probe, fold the window into
  // the health tracker.
  double pressure_sum = 0.0;
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t ni = static_cast<size_t>(i);
    const NodeProbe p = probe_(i);
    NodeCum& prev = prev_[ni];
    const uint64_t d_wait = p.wait_sum_ns - prev.wait_sum_ns;
    const uint64_t d_disp = p.dispatches - prev.dispatches;
    const uint64_t d_gets = p.gets - prev.gets;
    const uint64_t d_ebusy = p.ebusy - prev.ebusy;
    prev.wait_sum_ns = p.wait_sum_ns;
    prev.dispatches = p.dispatches;
    prev.gets = p.gets;
    prev.ebusy = p.ebusy;

    pressure_[ni] = d_disp > 0 ? static_cast<double>(d_wait) / static_cast<double>(d_disp) : 0.0;
    win_dispatches_[ni] = d_disp;
    load_[ni] = static_cast<double>(d_gets);
    pressure_sum += pressure_[ni];
    // The window's mean queueing delay doubles as the health tracker's
    // latency sample: fail-slow nodes show it even when they never EBUSY.
    health_.OnWindow(i, d_gets, d_ebusy, static_cast<DurationNs>(pressure_[ni]));

    if (p.tenant_gets != nullptr) {
      const uint32_t count = p.tenant_count < num_tenants ? p.tenant_count : num_tenants;
      uint64_t* prev_tg = prev_tenant_gets_.data() + ni * num_tenants;
      double weighted_load = 0.0;
      for (uint32_t t = 0; t < count; ++t) {
        const uint64_t cum = p.tenant_gets[t];
        const uint64_t d_tg = cum - prev_tg[t];
        tenant_rate_[t] += d_tg;
        weighted_load += weight_[t] * static_cast<double>(d_tg);
        prev_tg[t] = cum;
      }
      // Weight-aware load units: a gold get occupies `weight` units of a
      // node's capacity share, so a node serving few-but-gold tenants reads
      // as loaded as one serving many bronze mice.
      if (options_.weight_aware) {
        load_[ni] = weighted_load;
      }
    }
  }

  // Hot = pressure well above the cluster mean on a trustworthy window, or a
  // breaker the window data just opened.
  const double mean_pressure = pressure_sum / static_cast<double>(num_nodes_);
  bool any_hot = false;
  auto is_hot = [&](int i) {
    const size_t ni = static_cast<size_t>(i);
    if (health_.state(i) == resilience::BreakerState::kOpen) {
      return true;
    }
    return win_dispatches_[ni] >= options_.min_window_dispatches &&
           pressure_[ni] >= static_cast<double>(options_.pressure_floor) &&
           pressure_[ni] > options_.overload_factor * mean_pressure;
  };
  for (int i = 0; i < num_nodes_; ++i) {
    if (is_hot(i)) {
      any_hot = true;
      break;
    }
  }
  if (!any_hot) {
    return;
  }
  ++hot_ticks_;

  // Target load: what an average healthy node carries this window, and the
  // healthy pressure baseline the hot nodes are judged against.
  double healthy_load = 0.0;
  double healthy_pressure = 0.0;
  int healthy_nodes = 0;
  for (int i = 0; i < num_nodes_; ++i) {
    if (!is_hot(i)) {
      healthy_load += load_[static_cast<size_t>(i)];
      healthy_pressure += pressure_[static_cast<size_t>(i)];
      ++healthy_nodes;
    }
  }
  if (healthy_nodes == 0) {
    return;  // Every node is hot: there is no safe destination.
  }
  const double target_load = healthy_load / healthy_nodes;
  const double baseline_pressure = healthy_pressure / healthy_nodes;

  // Hot nodes drain in descending pressure order (worst first), stable by id.
  std::vector<int> hot;
  for (int i = 0; i < num_nodes_; ++i) {
    if (is_hot(i)) {
      hot.push_back(i);
    }
  }
  std::stable_sort(hot.begin(), hot.end(), [this](int a, int b) {
    return pressure_[static_cast<size_t>(a)] > pressure_[static_cast<size_t>(b)];
  });

  int budget = options_.max_migrations_per_tick;
  const int repl = placement_->replication();
  for (int h : hot) {
    if (budget <= 0) {
      break;
    }
    // Tenants homed on h, strictest class first, then biggest window rate:
    // moving one whale relieves more pressure than a hundred mice, and the
    // strict classes get first claim on the healthy capacity.
    drain_list_.clear();
    for (TenantId t = 0; t < num_tenants; ++t) {
      if (placement_->primary(t) == h && cooldown_until_tick_[t] <= ticks_) {
        drain_list_.push_back(t);
      }
    }
    // Within a priority tier the drain rate is measured in the same units as
    // keep_load: weighted gets when weight_aware (a weight-8 whale at 3 gets
    // outranks a weight-1 mouse at 5), raw gets otherwise.
    auto drain_rate = [this](TenantId t) {
      const double rate = static_cast<double>(tenant_rate_[t]);
      return options_.weight_aware ? weight_[t] * rate : rate;
    };
    std::stable_sort(drain_list_.begin(), drain_list_.end(),
                     [this, &drain_rate](TenantId a, TenantId b) {
                       const int8_t pa = directory_->priority_of(a);
                       const int8_t pb = directory_->priority_of(b);
                       if (pa != pb) {
                         return pa < pb;
                       }
                       return drain_rate(a) > drain_rate(b);
                     });

    // How much load this node should keep. A noisy-neighbor node serves gets
    // at a normal *rate* while imposing many times the healthy queueing
    // delay, so get-load alone would say "not overloaded" and drain nothing;
    // scale the healthy average down by the node's slowdown instead. A
    // breaker-open node keeps nothing.
    double keep_load = 0.0;
    if (health_.state(h) != resilience::BreakerState::kOpen) {
      const double slowdown =
          baseline_pressure > 0.0 ? pressure_[static_cast<size_t>(h)] / baseline_pressure : 1.0;
      keep_load = slowdown > 1.0 ? target_load / slowdown : target_load;
    }

    for (TenantId t : drain_list_) {
      if (budget <= 0 || load_[static_cast<size_t>(h)] <= keep_load) {
        break;
      }
      // Destination group: the `replication` least-loaded healthy nodes.
      ReplicaGroup g;
      g.size = repl;
      bool ok = true;
      for (int r = 0; r < repl; ++r) {
        int best = -1;
        for (int i = 0; i < num_nodes_; ++i) {
          if (i == h || is_hot(i)) {
            continue;
          }
          bool taken = false;
          for (int k = 0; k < r; ++k) {
            if (g.node[k] == i) {
              taken = true;
              break;
            }
          }
          if (taken) {
            continue;
          }
          if (best < 0 || load_[static_cast<size_t>(i)] < load_[static_cast<size_t>(best)]) {
            best = i;
          }
        }
        if (best < 0) {
          ok = false;  // Fewer healthy nodes than replicas: stop draining.
          break;
        }
        g.node[r] = best;
      }
      if (!ok) {
        break;
      }
      placement_->Assign(t, g);
      const double moved = drain_rate(t);
      load_[static_cast<size_t>(h)] -= moved;
      load_[static_cast<size_t>(g.node[0])] += moved;
      cooldown_until_tick_[t] = ticks_ + static_cast<uint64_t>(options_.tenant_cooldown_ticks);
      ++migrations_;
      --budget;
    }
  }
}

}  // namespace mitt::tenant
