#include "src/tenant/tenant.h"

#include <cmath>

namespace mitt::tenant {

std::vector<SloClass> TenantDirectory::DefaultClasses() {
  return {
      {"gold", Millis(15), 4.0, 0},
      {"silver", Millis(40), 2.0, 1},
      {"bronze", Millis(100), 1.0, 2},
  };
}

TenantDirectory TenantDirectory::BuildMix(const MixOptions& options) {
  TenantDirectory dir;
  std::vector<SloClass> classes =
      options.classes.empty() ? DefaultClasses() : options.classes;
  std::vector<double> share = options.class_share;
  if (share.size() != classes.size()) {
    share.assign(classes.size(), 1.0);
  }
  double share_sum = 0;
  for (double s : share) {
    share_sum += s;
  }
  for (const SloClass& c : classes) {
    dir.AddClass(c);
  }

  // Zipf-skewed rate over rank: weight(rank) = 1 / (rank+1)^theta, scaled by
  // the tenant's class weight, normalized so the population sums to
  // total_rate_hz. Rank == tenant id, so tenant 0 is the biggest whale.
  Rng rng(options.seed);
  const uint32_t n = options.num_tenants;
  std::vector<uint32_t> cls_of(n);
  std::vector<double> raw(n);
  double raw_sum = 0;
  for (uint32_t t = 0; t < n; ++t) {
    // Class by share, from the directory's own seeded stream.
    double draw = rng.NextDouble() * share_sum;
    uint32_t c = 0;
    while (c + 1 < share.size() && draw >= share[c]) {
      draw -= share[c];
      ++c;
    }
    cls_of[t] = c;
    raw[t] = classes[c].weight /
             std::pow(static_cast<double>(t + 1), options.rate_zipf_theta);
    raw_sum += raw[t];
  }

  const uint64_t span =
      options.keys_per_tenant > 0 ? options.keys_per_tenant : 1;
  for (uint32_t t = 0; t < n; ++t) {
    TenantSpec spec;
    spec.cls = cls_of[t];
    spec.rate_hz = options.total_rate_hz * raw[t] / raw_sum;
    // Stripe key ranges over the keyspace; wraparound is fine (the store
    // slots keys modulo num_keys anyway).
    spec.key_base = (static_cast<uint64_t>(t) * span) % options.keyspace;
    spec.key_span = span;
    dir.AddTenant(spec);
  }
  return dir;
}

}  // namespace mitt::tenant
