// Abstract IO scheduler interface sitting between the OS block layer and a
// device. Concrete implementations: NoopScheduler (FIFO, §4.1) and
// CfqScheduler (§4.2). A scheduler may carry a Mitt* admission predictor; in
// that case IOs whose SLO cannot be met complete immediately with EBUSY
// instead of being queued.

#ifndef MITTOS_SCHED_SCHEDULER_H_
#define MITTOS_SCHED_SCHEDULER_H_

#include <cstddef>

#include "src/sched/io_request.h"

namespace mitt::sched {

class SchedObs;

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  // Hands an IO to the scheduler. The IO either completes later through its
  // on_complete callback with kOk, or (SLO-aware schedulers only) completes —
  // possibly synchronously, inside this call — with kEbusy.
  virtual void Submit(IoRequest* req) = 0;

  // IOs inside scheduler queues, excluding those held by the device.
  virtual size_t PendingCount() const = 0;

  // Read-only window into the scheduler's observability aggregates (wait
  // sums, dispatch/reject counts). Null for schedulers without one.
  virtual const SchedObs* observer() const { return nullptr; }
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_SCHEDULER_H_
