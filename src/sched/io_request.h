// The IO descriptor that flows through the whole storage stack:
// OS syscall layer -> IO scheduler -> device queue -> completion.
//
// MittOS-specific fields carry the SLO (deadline), the prediction metadata
// used for calibration (§4.1: attach predicted processing time to the IO
// descriptor, measure the diff on completion), and the accuracy-accounting
// flag used by §7.6 (EBUSY flagged on the descriptor instead of returned).

#ifndef MITTOS_SCHED_IO_REQUEST_H_
#define MITTOS_SCHED_IO_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/obs/trace.h"

namespace mitt::sched {

enum class IoOp : uint8_t { kRead, kWrite, kErase };

// CFQ service classes, mirroring Linux ioprio classes (§4.2).
enum class IoClass : uint8_t { kRealTime = 0, kBestEffort = 1, kIdle = 2 };

// No SLO attached; the IO must never be rejected.
constexpr DurationNs kNoDeadline = -1;

struct IoRequest;

// Completion callback. `req` is valid only for the duration of the call.
using IoCompletionFn = std::function<void(const IoRequest& req, Status status)>;

struct IoRequest {
  uint64_t id = 0;

  IoOp op = IoOp::kRead;
  int64_t offset = 0;  // Byte offset on the device.
  int64_t size = 0;    // Bytes.

  // Submitting process and its CFQ scheduling parameters.
  int32_t pid = 0;
  IoClass io_class = IoClass::kBestEffort;
  int8_t priority = 4;  // 0 (highest) .. 7 (lowest) within the class.

  // --- MittOS SLO ---
  DurationNs deadline = kNoDeadline;

  // --- Observability (src/obs/) ---
  // The originating client request (id 0 for noise/background IOs) plus the
  // node label; schedulers and devices record queue_wait / device_service /
  // predict spans and per-node metrics against it.
  obs::TraceContext trace;

  // --- Lifecycle timestamps (simulated time) ---
  TimeNs submit_time = 0;    // When the syscall entered the scheduler.
  TimeNs dispatch_time = 0;  // When the device started holding it.

  // --- Prediction metadata (§4.1 "attach T_processNewIO ... to the IO
  //     descriptor", §7.6 accuracy accounting) ---
  DurationNs predicted_wait = 0;     // Predictor's wait estimate at submit.
  DurationNs predicted_process = 0;  // Predictor's service-time estimate.
  bool ebusy_flagged = false;        // Accuracy mode: would have been rejected.

  IoCompletionFn on_complete;

  bool has_deadline() const { return deadline != kNoDeadline; }
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_IO_REQUEST_H_
