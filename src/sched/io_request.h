// The IO descriptor that flows through the whole storage stack:
// OS syscall layer -> IO scheduler -> device queue -> completion.
//
// MittOS-specific fields carry the SLO (deadline), the prediction metadata
// used for calibration (§4.1: attach predicted processing time to the IO
// descriptor, measure the diff on completion), and the accuracy-accounting
// flag used by §7.6 (EBUSY flagged on the descriptor instead of returned).
//
// The descriptor also embeds the per-layer bookkeeping that used to live in
// side tables keyed by request id/pointer (hash lookups and node allocations
// on every IO): the OS completion callback, the SSD sub-IO countdown, the
// MittCFQ tolerance-wheel links, and the slot-arena bookkeeping
// (src/sched/io_pool.h). Requests remain plain default-constructible structs,
// so tests and baseline predictors can still stack- or heap-allocate them
// directly; the pool fields are simply unused then.

#ifndef MITTOS_SCHED_IO_REQUEST_H_
#define MITTOS_SCHED_IO_REQUEST_H_

#include <cstdint>

#include "src/common/inline_function.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/obs/trace.h"

namespace mitt::sched {

enum class IoOp : uint8_t { kRead, kWrite, kErase };

// CFQ service classes, mirroring Linux ioprio classes (§4.2).
enum class IoClass : uint8_t { kRealTime = 0, kBestEffort = 1, kIdle = 2 };

// No SLO attached; the IO must never be rejected.
constexpr DurationNs kNoDeadline = -1;

struct IoRequest;

// Completion callback. `req` is valid only for the duration of the call.
// Move-only with 48 bytes of inline capture (InlineFunction): the pipeline's
// own callbacks capture a single `this`, so assigning one never allocates.
// Completion sites move the callback out of the descriptor before invoking
// it, which lets the callback release the descriptor back to its pool.
using IoCompletionFn = InlineFunction<void(const IoRequest& req, Status status)>;

// End-of-syscall delivery to the caller of Os::Read/ReadWithWaitHint/Write:
// status plus the predictor's wait estimate (§7.8.1 EBUSY-with-wait-time).
// Carried on the descriptor itself rather than nested inside on_complete so
// no closure ever outgrows the inline buffer.
using IoDoneFn = InlineFunction<void(Status status, DurationNs predicted_wait)>;

struct IoRequest {
  uint64_t id = 0;

  IoOp op = IoOp::kRead;
  int64_t offset = 0;  // Byte offset on the device.
  int64_t size = 0;    // Bytes.

  // Submitting process and its CFQ scheduling parameters.
  int32_t pid = 0;
  IoClass io_class = IoClass::kBestEffort;
  int8_t priority = 4;  // 0 (highest) .. 7 (lowest) within the class.

  // --- MittOS SLO ---
  DurationNs deadline = kNoDeadline;

  // --- Observability (src/obs/) ---
  // The originating client request (id 0 for noise/background IOs) plus the
  // node label; schedulers and devices record queue_wait / device_service /
  // predict spans and per-node metrics against it.
  obs::TraceContext trace;

  // --- Lifecycle timestamps (simulated time) ---
  TimeNs submit_time = 0;    // When the syscall entered the scheduler.
  TimeNs dispatch_time = 0;  // When the device started holding it.

  // --- Prediction metadata (§4.1 "attach T_processNewIO ... to the IO
  //     descriptor", §7.6 accuracy accounting) ---
  DurationNs predicted_wait = 0;     // Predictor's wait estimate at submit.
  DurationNs predicted_process = 0;  // Predictor's service-time estimate.
  bool ebusy_flagged = false;        // Accuracy mode: would have been rejected.

  // --- Os syscall-layer context (src/os/os.cc) ---
  uint64_t file = 0;        // Originating file handle (0: kernel-internal).
  int64_t file_offset = 0;  // Offset within `file` (device offset minus base).
  bool fill_cache = false;  // Populate the page cache on completion.

  // --- SSD bookkeeping (device sub-IO fan-out, predictor shadow) ---
  int32_t subs_remaining = 0;  // Sub-IOs still in flight (SsdModel).
  bool ssd_tracked = false;    // MittSSD shadow accounting covers this IO.

  // --- MittCFQ tolerance-wheel intrusive links (src/os/mitt_cfq.h) ---
  IoRequest* tol_prev = nullptr;
  IoRequest* tol_next = nullptr;
  int64_t tol_bucket = 0;
  bool in_tolerance = false;

  // --- Slot-arena bookkeeping (src/sched/io_pool.h) ---
  uint32_t pool_slot = 0;
  uint32_t pool_epoch = 0;

  IoCompletionFn on_complete;

  // End-of-syscall delivery, fired by the Os layer after on_complete's
  // bookkeeping; null for kernel-internal IOs (destages, GC, prefetch).
  IoDoneFn done;

  bool has_deadline() const { return deadline != kNoDeadline; }
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_IO_REQUEST_H_
