#include "src/sched/cfq_scheduler.h"

#include <algorithm>

namespace mitt::sched {
namespace {

int ClassRank(IoClass c) { return static_cast<int>(c); }

}  // namespace

void CfqScheduler::RrList::push_back(ProcQueue* p) {
  p->rr_prev = tail;
  p->rr_next = nullptr;
  if (tail != nullptr) {
    tail->rr_next = p;
  } else {
    head = p;
  }
  tail = p;
  ++count;
}

void CfqScheduler::RrList::remove(ProcQueue* p) {
  if (p->rr_prev != nullptr) {
    p->rr_prev->rr_next = p->rr_next;
  } else {
    head = p->rr_next;
  }
  if (p->rr_next != nullptr) {
    p->rr_next->rr_prev = p->rr_prev;
  } else {
    tail = p->rr_prev;
  }
  p->rr_prev = p->rr_next = nullptr;
  --count;
}

CfqScheduler::CfqScheduler(sim::Simulator* sim, device::DiskModel* disk,
                           os::MittCfqPredictor* predictor, const CfqParams& params)
    : sim_(sim), disk_(disk), predictor_(predictor), params_(params), obs_(sim) {
  disk_->set_completion_listener([this](IoRequest* req) { OnDeviceCompletion(req); });
  disk_->set_capacity_listener([this] { DispatchMore(); });
  procs_.reserve(256);
  victims_.reserve(16);
}

CfqScheduler::ProcQueue& CfqScheduler::GetProc(const IoRequest& req) {
  auto it = procs_.find(req.pid);
  if (it == procs_.end()) {
    ProcQueue* proc;
    if (!proc_free_.empty()) {
      proc = proc_free_.back();
      proc_free_.pop_back();
    } else {
      proc = &proc_slab_.emplace_back();
    }
    proc->pid = req.pid;
    it = procs_.emplace(req.pid, proc).first;
  }
  // ionice can change a process' class/priority at any time; refresh. A
  // class change must move the queue between round-robin trees, or it is
  // stranded in the old tree with in_rr out of sync and the dispatch loop
  // can select it forever without ever draining it.
  ProcQueue* proc = it->second;
  if (proc->in_rr && proc->io_class != req.io_class) {
    trees_[ClassRank(proc->io_class)].remove(proc);
    proc->in_rr = false;  // EnsureInTree re-files it under the new class.
    if (active_ == proc) {
      active_ = nullptr;
    }
  }
  proc->io_class = req.io_class;
  proc->priority = req.priority;
  return *proc;
}

void CfqScheduler::EnsureInTree(ProcQueue* proc) {
  if (!proc->in_rr) {
    trees_[ClassRank(proc->io_class)].push_back(proc);
    proc->in_rr = true;
  }
}

void CfqScheduler::MaybeRemoveFromTree(ProcQueue* proc) {
  if (proc->in_rr && proc->sorted.empty()) {
    trees_[ClassRank(proc->io_class)].remove(proc);
    proc->in_rr = false;
    if (active_ == proc) {
      active_ = nullptr;
    }
  }
}

void CfqScheduler::MaybeRecycleProc(ProcQueue* proc) {
  if (procs_.size() <= kProcRecycleThreshold || proc->in_rr || proc == active_ ||
      proc->in_device != 0 || !proc->sorted.empty()) {
    return;
  }
  procs_.erase(proc->pid);
  proc->pid = 0;
  proc->io_class = IoClass::kBestEffort;
  proc->priority = 4;
  proc_free_.push_back(proc);
}

void CfqScheduler::SortedInsert(std::vector<IoRequest*>* sorted, IoRequest* req) {
  // Descending order; placing the new IO *before* existing equal offsets
  // keeps pop_back() FIFO among ties, matching the old multimap (which
  // inserted at the upper bound and dispatched from begin()).
  const auto it = std::lower_bound(
      sorted->begin(), sorted->end(), req->offset,
      [](const IoRequest* a, int64_t offset) { return a->offset > offset; });
  sorted->insert(it, req);
}

DurationNs CfqScheduler::SliceFor(const ProcQueue& proc) const {
  return params_.base_slice * (8 - proc.priority) / 4;
}

int CfqScheduler::BusiestClass() const {
  for (int c = 0; c < 3; ++c) {
    if (!trees_[c].empty()) {
      return c;
    }
  }
  return -1;
}

void CfqScheduler::SelectActive() {
  const int top = BusiestClass();
  if (top < 0) {
    active_ = nullptr;
    return;
  }
  // Preemption: a higher class with runnable processes always wins the disk
  // (CFQ "always picks IOs from the RealTime tree first").
  if (active_ != nullptr &&
      (ClassRank(active_->io_class) > top || sim_->Now() >= slice_end_ ||
       active_->sorted.empty())) {
    // Slice over (or preempted): rotate to the back of its tree.
    auto& tree = trees_[ClassRank(active_->io_class)];
    if (active_->in_rr && tree.size() > 1 && tree.front() == active_) {
      tree.pop_front();
      tree.push_back(active_);
    }
    active_ = nullptr;
  }
  if (active_ == nullptr) {
    active_ = trees_[top].front();
    slice_end_ = sim_->Now() + SliceFor(*active_);
  }
}

void CfqScheduler::Submit(IoRequest* req) {
  req->submit_time = sim_->Now();
  obs_.Touch(*req);
  if (predictor_ != nullptr) {
    const bool reject = predictor_->ShouldReject(req);
    obs_.OnPredict(*req, reject);
    if (reject) {
      CompleteEbusy(req);
      return;
    }
  }

  // Snapshot the predictor's victim buffer: completing a victim with EBUSY
  // may re-enter Submit (and thus OnAccepted, which reuses that buffer).
  victims_.clear();
  if (predictor_ != nullptr) {
    const auto& victims = predictor_->OnAccepted(req);
    victims_.assign(victims.begin(), victims.end());
  }

  ProcQueue& proc = GetProc(*req);
  SortedInsert(&proc.sorted, req);
  ++pending_;
  EnsureInTree(&proc);

  // Cancel previously accepted IOs whose deadline this arrival made
  // unmeetable ("bumped to the back", §4.2).
  for (IoRequest* victim : victims_) {
    auto vit = procs_.find(victim->pid);
    if (vit == procs_.end()) {
      continue;
    }
    ProcQueue& vproc = *vit->second;
    auto it = std::lower_bound(
        vproc.sorted.begin(), vproc.sorted.end(), victim->offset,
        [](const IoRequest* a, int64_t offset) { return a->offset > offset; });
    for (; it != vproc.sorted.end() && (*it)->offset == victim->offset; ++it) {
      if (*it == victim) {
        vproc.sorted.erase(it);
        --pending_;
        break;
      }
    }
    MaybeRemoveFromTree(&vproc);
    CompleteEbusy(victim);
  }

  DispatchMore();
}

void CfqScheduler::DispatchMore() {
  while (disk_->CanAccept()) {
    SelectActive();
    if (active_ == nullptr) {
      return;
    }
    ProcQueue* proc = active_;
    if (proc->sorted.empty() || proc->in_device >= params_.quantum) {
      // Nothing dispatchable from the active queue right now. If the block is
      // only the quantum, wait for a completion; if the queue is empty the
      // next SelectActive will rotate.
      if (proc->sorted.empty()) {
        MaybeRemoveFromTree(proc);
        if (BusiestClass() < 0) {
          return;
        }
        continue;
      }
      return;
    }
    IoRequest* req = proc->sorted.back();
    proc->sorted.pop_back();
    --pending_;
    ++proc->in_device;
    if (predictor_ != nullptr) {
      predictor_->OnDispatch(req);
    }
    obs_.OnDispatch(*req);
    disk_->Submit(req);
    MaybeRemoveFromTree(proc);
  }
  obs_.OnQueueDepth(pending_);
}

void CfqScheduler::OnDeviceCompletion(IoRequest* req) {
  auto it = procs_.find(req->pid);
  if (it != procs_.end()) {
    it->second->in_device = std::max(0, it->second->in_device - 1);
  }
  if (predictor_ != nullptr) {
    const DurationNs actual = sim_->Now() - std::max(req->dispatch_time, last_completion_);
    predictor_->OnCompletion(*req, actual);
  }
  last_completion_ = sim_->Now();
  obs_.OnServiceDone(*req);
  if (it != procs_.end()) {
    MaybeRecycleProc(it->second);
  }
  if (req->on_complete) {
    auto cb = std::move(req->on_complete);
    cb(*req, Status::Ok());
  }
  DispatchMore();
}

void CfqScheduler::CompleteEbusy(IoRequest* req) {
  if (req->on_complete) {
    auto cb = std::move(req->on_complete);
    cb(*req, Status::Ebusy());
  }
}

size_t CfqScheduler::ProcPendingCount(int32_t pid) const {
  const auto it = procs_.find(pid);
  return it == procs_.end() ? 0 : it->second->sorted.size();
}

}  // namespace mitt::sched
