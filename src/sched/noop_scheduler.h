// Noop (FIFO) IO scheduler (§4.1): arriving IOs go to a FIFO dispatch queue
// whose items are absorbed into the disk's device queue as it drains. With a
// MittNoopPredictor attached, IOs that cannot meet their deadline SLO are
// completed immediately with EBUSY and never queued.

#ifndef MITTOS_SCHED_NOOP_SCHEDULER_H_
#define MITTOS_SCHED_NOOP_SCHEDULER_H_

#include "src/common/ring_queue.h"
#include "src/device/disk_model.h"
#include "src/os/mitt_noop.h"
#include "src/sched/sched_obs.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::sched {

class NoopScheduler : public IoScheduler {
 public:
  // `predictor` may be null (vanilla noop). The scheduler installs itself as
  // the disk's completion listener.
  NoopScheduler(sim::Simulator* sim, device::DiskModel* disk, os::MittNoopPredictor* predictor);

  void Submit(IoRequest* req) override;
  size_t PendingCount() const override { return dispatch_queue_.size(); }
  const SchedObs* observer() const override { return &obs_; }

 private:
  void DispatchMore();
  void OnDeviceCompletion(IoRequest* req);

  sim::Simulator* sim_;
  device::DiskModel* disk_;
  os::MittNoopPredictor* predictor_;
  SchedObs obs_;
  RingQueue<IoRequest*> dispatch_queue_;
  TimeNs last_completion_ = 0;
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_NOOP_SCHEDULER_H_
