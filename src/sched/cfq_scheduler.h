// CFQ (Completely Fair Queueing) IO scheduler (§4.2), structurally following
// Linux's: three service trees (RealTime / BestEffort / Idle); per-process
// nodes inside each tree served round-robin with priority-scaled time slices;
// inside each node the pending IOs are sorted by on-disk offset; dispatched
// IOs go to the device queue (bounded by a per-process quantum).
//
// Simplifications vs. Linux, documented for fidelity review:
//  * one cgroup (the paper's experiments use a single group),
//  * no anticipatory idling between slices,
//  * priority affects slice length; RR order within a tree is FIFO.
//
// With a MittCfqPredictor attached, arriving IOs that cannot meet their
// deadline complete with EBUSY immediately, and previously accepted IOs whose
// deadline becomes unmeetable (bumped by higher-class arrivals) are cancelled
// out of the queues with EBUSY (§4.2 "Accuracy").
//
// Hot-path layout: the per-process "rbtree" is a descending offset-sorted
// vector (dispatch pops the back, insertion is a binary search + shift —
// queues are short, so the shift beats per-IO tree-node allocation), the
// round-robin trees are intrusive doubly-linked lists threaded through the
// ProcQueue nodes, and ProcQueue nodes live in a stable-address slab with a
// free list. Under pid churn, idle queues past a threshold are recycled
// (their vectors keep capacity), so steady state allocates nothing.

#ifndef MITTOS_SCHED_CFQ_SCHEDULER_H_
#define MITTOS_SCHED_CFQ_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/device/disk_model.h"
#include "src/os/mitt_cfq.h"
#include "src/sched/sched_obs.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulator.h"

namespace mitt::sched {

struct CfqParams {
  // Slice for priority p (0 highest .. 7 lowest):
  //   slice = base_slice * (8 - p) / 4   (tunable, monotone in priority).
  DurationNs base_slice = Millis(40);
  // Max IOs a single process may keep in the device queue at once.
  int quantum = 8;
};

class CfqScheduler : public IoScheduler {
 public:
  CfqScheduler(sim::Simulator* sim, device::DiskModel* disk, os::MittCfqPredictor* predictor,
               const CfqParams& params = {});

  void Submit(IoRequest* req) override;
  size_t PendingCount() const override { return pending_; }
  const SchedObs* observer() const override { return &obs_; }

  // Test introspection.
  size_t ProcPendingCount(int32_t pid) const;

 private:
  struct ProcQueue {
    int32_t pid = 0;
    IoClass io_class = IoClass::kBestEffort;
    int8_t priority = 4;
    // Pending IOs in *descending* offset order: back() is the smallest
    // offset, equal offsets keep FIFO order at the back (insertion places a
    // new IO before existing equals), so dispatch is pop_back().
    std::vector<IoRequest*> sorted;
    int in_device = 0;
    bool in_rr = false;
    ProcQueue* rr_prev = nullptr;
    ProcQueue* rr_next = nullptr;
  };

  // Intrusive round-robin list over ProcQueue::rr_prev/rr_next.
  struct RrList {
    ProcQueue* head = nullptr;
    ProcQueue* tail = nullptr;
    size_t count = 0;

    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    ProcQueue* front() const { return head; }
    void push_back(ProcQueue* p);
    void remove(ProcQueue* p);
    void pop_front() { remove(head); }
  };

  ProcQueue& GetProc(const IoRequest& req);
  void EnsureInTree(ProcQueue* proc);
  void MaybeRemoveFromTree(ProcQueue* proc);
  void MaybeRecycleProc(ProcQueue* proc);
  static void SortedInsert(std::vector<IoRequest*>* sorted, IoRequest* req);
  DurationNs SliceFor(const ProcQueue& proc) const;
  // Highest-rank (lowest index) class with runnable processes, or -1.
  int BusiestClass() const;
  void SelectActive();
  void DispatchMore();
  void OnDeviceCompletion(IoRequest* req);
  void CompleteEbusy(IoRequest* req);

  // Recycle idle ProcQueues only past this population, i.e. under pid churn;
  // long-lived pids keep their nodes (and their vectors' capacity) warm.
  static constexpr size_t kProcRecycleThreshold = 1024;

  sim::Simulator* sim_;
  device::DiskModel* disk_;
  os::MittCfqPredictor* predictor_;
  CfqParams params_;
  SchedObs obs_;

  std::deque<ProcQueue> proc_slab_;  // Stable addresses; grows only.
  std::vector<ProcQueue*> proc_free_;
  std::unordered_map<int32_t, ProcQueue*> procs_;
  std::vector<IoRequest*> victims_;  // Reused snapshot of predictor victims.
  RrList trees_[3];  // Round-robin lists per service class.
  ProcQueue* active_ = nullptr;
  TimeNs slice_end_ = 0;
  size_t pending_ = 0;
  TimeNs last_completion_ = 0;
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_CFQ_SCHEDULER_H_
