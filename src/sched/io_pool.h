// Slot arena for pooled IoRequest descriptors.
//
// Mirrors the simulator's event arena (src/sim/simulator.cc): descriptors
// live in fixed-size blocks with stable addresses, a free list recycles
// slots, and a per-slot epoch catches double-release and use-after-release
// in debug-checked builds. Acquire/Release replace the per-IO
// make_unique/delete (plus the id->descriptor map node) that used to
// dominate the syscall hot path.
//
// Owners: Os (syscall-layer descriptors), DiskModel (NVRAM destages),
// SsdGc (garbage-collection IOs). Single-threaded within one simulation,
// like everything else in the engine.

#ifndef MITTOS_SCHED_IO_POOL_H_
#define MITTOS_SCHED_IO_POOL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/sched/io_request.h"

namespace mitt::sched {

class IoRequestPool {
 public:
  IoRequestPool() = default;
  IoRequestPool(const IoRequestPool&) = delete;
  IoRequestPool& operator=(const IoRequestPool&) = delete;

  // Returns a freshly reset descriptor. The pool retains ownership; the
  // pointer is stable until Release.
  IoRequest* Acquire() {
    if (free_.empty()) {
      AddBlock();
    }
    uint32_t slot = free_.back();
    free_.pop_back();
    IoRequest* req = At(slot);
    uint32_t epoch = req->pool_epoch;
    *req = IoRequest{};
    req->pool_slot = slot;
    req->pool_epoch = epoch | kLiveBit;
    ++live_;
    return req;
  }

  // Returns a descriptor to the free list. Aborts on double-release or on a
  // pointer that does not belong to this pool's slot.
  void Release(IoRequest* req) {
    uint32_t slot = req->pool_slot;
    if (slot >= blocks_.size() * kBlockSize || At(slot) != req ||
        (req->pool_epoch & kLiveBit) == 0) {
      std::fprintf(stderr, "IoRequestPool: bad release of slot %u\n", slot);
      std::abort();
    }
    // Drop callback resources now rather than at next Acquire.
    req->on_complete = nullptr;
    req->done = nullptr;
    req->pool_epoch = (req->pool_epoch & ~kLiveBit) + 1;
    free_.push_back(slot);
    --live_;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return blocks_.size() * kBlockSize; }

 private:
  static constexpr size_t kBlockSize = 256;
  static constexpr uint32_t kLiveBit = 0x8000'0000u;

  IoRequest* At(uint32_t slot) {
    return &blocks_[slot / kBlockSize][slot % kBlockSize];
  }

  void AddBlock() {
    uint32_t base = static_cast<uint32_t>(blocks_.size() * kBlockSize);
    blocks_.push_back(std::make_unique<IoRequest[]>(kBlockSize));
    IoRequest* block = blocks_.back().get();
    free_.reserve(blocks_.size() * kBlockSize);
    // Hand slots out in ascending order: the freshest block's low slots end
    // up at the back of the free list.
    for (size_t i = kBlockSize; i-- > 0;) {
      block[i].pool_slot = base + static_cast<uint32_t>(i);
      free_.push_back(base + static_cast<uint32_t>(i));
    }
  }

  std::vector<std::unique_ptr<IoRequest[]>> blocks_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_IO_POOL_H_
