// Scheduler-layer observability hooks (src/obs/), shared by NoopScheduler,
// CfqScheduler and SsdBlockLayer.
//
// One scheduler instance serves exactly one machine, so the metric handles
// are resolved lazily from the first submitted request's node label and then
// cached; every method collapses to a couple of null checks when no tracer /
// registry is attached to the simulator (and to nothing at all when the obs
// subsystem is compiled out, because Simulator::tracer()/metrics() become
// constant nullptr).

#ifndef MITTOS_SCHED_SCHED_OBS_H_
#define MITTOS_SCHED_SCHED_OBS_H_

#include <cstddef>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::sched {

class SchedObs {
 public:
  explicit SchedObs(sim::Simulator* sim) : sim_(sim) {}

  // Resolve metric handles on first use. The registry is attached to the
  // simulator before the world is built, but the node label only arrives
  // with the first request.
  void Touch(const IoRequest& req) {
    if (resolved_) {
      return;
    }
    resolved_ = true;
    if (obs::MetricsRegistry* mx = sim_->metrics()) {
      predictor_accept_ = &mx->counter("predictor_accept_total", req.trace.node);
      predictor_reject_ = &mx->counter("predictor_reject_total", req.trace.node);
      queue_depth_ = &mx->gauge("queue_depth", req.trace.node);
    }
  }

  // An admission decision was made for a deadline-carrying IO.
  void OnPredict(const IoRequest& req, bool rejected) {
    if (!req.has_deadline()) {
      return;
    }
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordInstant(obs::SpanKind::kPredict, req.trace, req.submit_time);
    }
    obs::Counter* c = rejected ? predictor_reject_ : predictor_accept_;
    if (c != nullptr) {
      c->Add();
    }
  }

  // The IO is leaving the scheduler queue for the device queue, at Now().
  // Recorded for untraced (noise/background) IOs too: they are the
  // contention a trace exists to show.
  void OnDispatch(const IoRequest& req) {
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordSpan(obs::SpanKind::kQueueWait, req.trace, req.submit_time, sim_->Now());
    }
  }

  // The device finished the IO at Now(); dispatch_time was stamped by the
  // device model when it accepted the IO.
  void OnServiceDone(const IoRequest& req) {
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordSpan(obs::SpanKind::kDeviceService, req.trace, req.dispatch_time, sim_->Now());
    }
  }

  void OnQueueDepth(size_t depth) {
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(depth));
    }
  }

 private:
  sim::Simulator* sim_;
  bool resolved_ = false;
  obs::Counter* predictor_accept_ = nullptr;
  obs::Counter* predictor_reject_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_SCHED_OBS_H_
