// Scheduler-layer observability hooks (src/obs/), shared by NoopScheduler,
// CfqScheduler and SsdBlockLayer.
//
// One scheduler instance serves exactly one machine, so the metric handles
// are resolved lazily from the first submitted request's node label and then
// cached; every method collapses to a couple of null checks when no tracer /
// registry is attached to the simulator (and to nothing at all when the obs
// subsystem is compiled out, because Simulator::tracer()/metrics() become
// constant nullptr).

#ifndef MITTOS_SCHED_SCHED_OBS_H_
#define MITTOS_SCHED_SCHED_OBS_H_

#include <cstddef>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::sched {

class SchedObs {
 public:
  explicit SchedObs(sim::Simulator* sim) : sim_(sim) {}

  // Resolve metric handles on first use. The registry is attached to the
  // simulator before the world is built, but the node label only arrives
  // with the first request.
  void Touch(const IoRequest& req) {
    if (resolved_) {
      return;
    }
    resolved_ = true;
    if (obs::MetricsRegistry* mx = sim_->metrics()) {
      predictor_accept_ = &mx->counter("predictor_accept_total", req.trace.node);
      predictor_reject_ = &mx->counter("predictor_reject_total", req.trace.node);
      queue_depth_ = &mx->gauge("queue_depth", req.trace.node);
    }
  }

  // An admission decision was made for a deadline-carrying IO.
  void OnPredict(const IoRequest& req, bool rejected) {
    if (!req.has_deadline()) {
      return;
    }
    if (rejected) {
      ++rejects_;
    }
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordInstant(obs::SpanKind::kPredict, req.trace, req.submit_time);
    }
    obs::Counter* c = rejected ? predictor_reject_ : predictor_accept_;
    if (c != nullptr) {
      c->Add();
    }
  }

  // The IO is leaving the scheduler queue for the device queue, at Now().
  // Recorded for untraced (noise/background) IOs too: they are the
  // contention a trace exists to show.
  void OnDispatch(const IoRequest& req) {
    wait_sum_ns_ += static_cast<uint64_t>(sim_->Now() - req.submit_time);
    ++dispatches_;
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordSpan(obs::SpanKind::kQueueWait, req.trace, req.submit_time, sim_->Now());
    }
  }

  // Queueless block layers (the SSD path dispatches straight into the
  // device) call this at completion instead of relying on OnDispatch's
  // submit->dispatch interval: the device-internal sojourn past submit is
  // the wait this node imposed, so it is what the placement controller's
  // pressure probe must see.
  void OnDeviceSojourn(const IoRequest& req) {
    wait_sum_ns_ += static_cast<uint64_t>(sim_->Now() - req.submit_time);
  }

  // The device finished the IO at Now(); dispatch_time was stamped by the
  // device model when it accepted the IO.
  void OnServiceDone(const IoRequest& req) {
    if (obs::Tracer* tr = sim_->tracer(); tr != nullptr && tr->enabled()) {
      tr->RecordSpan(obs::SpanKind::kDeviceService, req.trace, req.dispatch_time, sim_->Now());
    }
  }

  void OnQueueDepth(size_t depth) {
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(depth));
    }
  }

  // Cumulative O(1) aggregates, maintained even with obs compiled out. The
  // placement controller (src/tenant/) diffs these across control windows:
  // wait_sum/dispatches is the mean queueing delay a replica imposed during
  // the window — exactly the quantity the Mitt* predictors already estimate
  // per-request, aggregated for free.
  uint64_t wait_sum_ns() const { return wait_sum_ns_; }
  uint64_t dispatches() const { return dispatches_; }
  uint64_t rejects() const { return rejects_; }

 private:
  sim::Simulator* sim_;
  uint64_t wait_sum_ns_ = 0;
  uint64_t dispatches_ = 0;
  uint64_t rejects_ = 0;
  bool resolved_ = false;
  obs::Counter* predictor_accept_ = nullptr;
  obs::Counter* predictor_reject_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace mitt::sched

#endif  // MITTOS_SCHED_SCHED_OBS_H_
