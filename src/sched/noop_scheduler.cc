#include "src/sched/noop_scheduler.h"

#include <algorithm>

namespace mitt::sched {

NoopScheduler::NoopScheduler(sim::Simulator* sim, device::DiskModel* disk,
                             os::MittNoopPredictor* predictor)
    : sim_(sim), disk_(disk), predictor_(predictor), obs_(sim) {
  disk_->set_completion_listener([this](IoRequest* req) { OnDeviceCompletion(req); });
  disk_->set_capacity_listener([this] { DispatchMore(); });
}

void NoopScheduler::Submit(IoRequest* req) {
  req->submit_time = sim_->Now();
  obs_.Touch(*req);
  if (predictor_ != nullptr) {
    const bool reject = predictor_->ShouldReject(req);
    obs_.OnPredict(*req, reject);
    if (reject) {
      // Fast rejection: the IO is never queued (§3.3 "the rejected request is
      // not queued; it is automatically cancelled").
      if (req->on_complete) {
        auto cb = std::move(req->on_complete);
        cb(*req, Status::Ebusy());
      }
      return;
    }
    predictor_->OnAccepted(*req);
  }
  dispatch_queue_.push_back(req);
  DispatchMore();
}

void NoopScheduler::DispatchMore() {
  while (!dispatch_queue_.empty() && disk_->CanAccept()) {
    IoRequest* req = dispatch_queue_.front();
    dispatch_queue_.pop_front();
    obs_.OnDispatch(*req);
    disk_->Submit(req);
  }
  obs_.OnQueueDepth(dispatch_queue_.size());
}

void NoopScheduler::OnDeviceCompletion(IoRequest* req) {
  if (predictor_ != nullptr) {
    // Actual processing time: the span the device spent on this IO, bounded
    // below by the previous completion (the OS cannot see inside the device
    // queue; §7.8.2).
    const DurationNs actual =
        sim_->Now() - std::max(req->dispatch_time, last_completion_);
    predictor_->OnCompletion(*req, actual);
  }
  last_completion_ = sim_->Now();
  obs_.OnServiceDone(*req);
  if (req->on_complete) {
    auto cb = std::move(req->on_complete);
    cb(*req, Status::Ok());
  }
  DispatchMore();
}

}  // namespace mitt::sched
