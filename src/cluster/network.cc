#include "src/cluster/network.h"

namespace mitt::cluster {

Network::Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {}

void Network::Deliver(std::function<void()> fn) {
  const DurationNs jitter =
      params_.jitter > 0 ? rng_.UniformInt(-params_.jitter, params_.jitter) : 0;
  sim_->Schedule(params_.one_way + jitter, std::move(fn));
}

}  // namespace mitt::cluster
