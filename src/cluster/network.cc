#include "src/cluster/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/sim/sharded_engine.h"

namespace mitt::cluster {

namespace {
// Weyl increment decorrelating per-shard RNG lanes from one seed.
constexpr uint64_t kLaneSeedStride = 0x9E3779B97F4A7C15ULL;
}  // namespace

Network::Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed)
    : sim_(sim), params_(params) {
  lanes_.resize(1);
  lanes_[0].rng = Rng(seed);
  seed_ = seed;
}

void Network::AttachShards(sim::ShardedEngine* engine, std::vector<int> node_shard) {
  assert(engine != nullptr);
  assert(lanes_[0].delivered == 0 && "AttachShards must precede traffic");
  engine_ = engine;
  node_shard_ = std::move(node_shard);
  lanes_.resize(static_cast<size_t>(engine->num_shards()));
  for (size_t s = 1; s < lanes_.size(); ++s) {
    lanes_[s].rng = Rng(seed_ + kLaneSeedStride * static_cast<uint64_t>(s));
  }
}

DurationNs Network::SampleHop(Lane& lane, int peer) {
  const DurationNs jitter =
      params_.jitter > 0 ? lane.rng.UniformInt(-params_.jitter, params_.jitter) : 0;
  double multiplier = fabric_delay_multiplier_;
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer); it != link_faults_.end()) {
      multiplier *= it->second.delay_multiplier;
    }
  }
  return static_cast<DurationNs>(static_cast<double>(params_.one_way + jitter) * multiplier);
}

void Network::DeliverHop(int src, int peer, int dst_shard, DeliverFn fn) {
  Lane& lane = lanes_[static_cast<size_t>(src)];
  DurationNs hop = SampleHop(lane, peer);
  double drop_prob = fabric_drop_probability_;
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer); it != link_faults_.end()) {
      drop_prob = std::max(drop_prob, it->second.drop_probability);
    }
  }
  if (drop_prob > 0.0 && lane.rng.Bernoulli(drop_prob)) {
    // Lost on the wire; the transport retransmits after its timeout.
    hop += params_.retransmit_timeout;
    ++lane.dropped;
  }
  ++lane.delivered;
  if (engine_ == nullptr) {
    sim_->Schedule(hop, std::move(fn));
    return;
  }
  sim::Simulator* src_sim = engine_->shard(src);
  if (dst_shard == src) {
    // Shard-local: the legacy fast path, no mailbox traffic.
    src_sim->Schedule(hop, std::move(fn));
    return;
  }
  // hop >= one_way - jitter == the engine lookahead, so the arrival time
  // clears the open window's horizon (Post clamps defensively regardless).
  ++lane.cross_hops;
  engine_->Post(dst_shard, src_sim->Now() + hop, std::move(fn));
}

void Network::Deliver(int peer, DeliverFn fn) {
  const int src = engine_ != nullptr ? engine_->CurrentShardId() : 0;
  Deliver(peer, src, std::move(fn));
}

void Network::Deliver(int peer, int dst_shard, DeliverFn fn) {
  const int src = engine_ != nullptr ? engine_->CurrentShardId() : 0;
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer);
        it != link_faults_.end() && it->second.partitioned) {
      Lane& lane = lanes_[static_cast<size_t>(src)];
      lane.held.push_back({peer, dst_shard, std::move(fn)});
      ++lane.deferred;
      return;
    }
  }
  DeliverHop(src, peer, dst_shard, std::move(fn));
}

void Network::SetLinkDelayMultiplier(int peer, double multiplier) {
  if (peer < 0) {
    fabric_delay_multiplier_ = multiplier;
    return;
  }
  link_faults_[peer].delay_multiplier = multiplier;
}

void Network::SetLinkDropProbability(int peer, double probability) {
  if (peer < 0) {
    fabric_drop_probability_ = probability;
    return;
  }
  link_faults_[peer].drop_probability = probability;
}

void Network::SetLinkPartitioned(int peer, bool partitioned) {
  LinkFault& fault = link_faults_[peer];
  if (fault.partitioned == partitioned) {
    return;
  }
  fault.partitioned = partitioned;
  if (partitioned) {
    return;
  }
  // Heal: flush held messages in (source lane, arrival) order, each over a
  // fresh hop sampled from its own lane. Runs quiesced in sharded mode, so
  // the flush order — and therefore every downstream event seq — is a pure
  // function of the simulation.
  for (Lane& lane : lanes_) {
    size_t kept = 0;
    const int src = static_cast<int>(&lane - lanes_.data());
    for (size_t i = 0; i < lane.held.size(); ++i) {
      HeldMsg& msg = lane.held[i];
      if (msg.peer != peer) {
        lane.held[kept++] = std::move(msg);  // Still partitioned elsewhere.
        continue;
      }
      DeliverHop(src, peer, msg.dst_shard, std::move(msg.fn));
    }
    lane.held.resize(kept);
  }
}

bool Network::LinkPartitioned(int peer) const {
  const auto it = link_faults_.find(peer);
  return it != link_faults_.end() && it->second.partitioned;
}

uint64_t Network::messages_delivered() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.delivered;
  }
  return total;
}

uint64_t Network::messages_dropped() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.dropped;
  }
  return total;
}

uint64_t Network::messages_deferred() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.deferred;
  }
  return total;
}

uint64_t Network::cross_shard_hops() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.cross_hops;
  }
  return total;
}

}  // namespace mitt::cluster
