#include "src/cluster/network.h"

#include <algorithm>
#include <utility>

namespace mitt::cluster {

Network::Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {}

DurationNs Network::SampleHop(int peer) {
  const DurationNs jitter =
      params_.jitter > 0 ? rng_.UniformInt(-params_.jitter, params_.jitter) : 0;
  double multiplier = fabric_delay_multiplier_;
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer); it != link_faults_.end()) {
      multiplier *= it->second.delay_multiplier;
    }
  }
  return static_cast<DurationNs>(static_cast<double>(params_.one_way + jitter) * multiplier);
}

void Network::Deliver(int peer, DeliverFn fn) {
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer);
        it != link_faults_.end() && it->second.partitioned) {
      it->second.held.push_back(std::move(fn));
      ++messages_deferred_;
      return;
    }
  }
  DurationNs hop = SampleHop(peer);
  double drop_prob = fabric_drop_probability_;
  if (peer != kNoPeer) {
    if (const auto it = link_faults_.find(peer); it != link_faults_.end()) {
      drop_prob = std::max(drop_prob, it->second.drop_probability);
    }
  }
  if (drop_prob > 0.0 && rng_.Bernoulli(drop_prob)) {
    // Lost on the wire; the transport retransmits after its timeout.
    hop += params_.retransmit_timeout;
    ++messages_dropped_;
  }
  ++messages_delivered_;
  sim_->Schedule(hop, std::move(fn));
}

void Network::SetLinkDelayMultiplier(int peer, double multiplier) {
  if (peer < 0) {
    fabric_delay_multiplier_ = multiplier;
    return;
  }
  link_faults_[peer].delay_multiplier = multiplier;
}

void Network::SetLinkDropProbability(int peer, double probability) {
  if (peer < 0) {
    fabric_drop_probability_ = probability;
    return;
  }
  link_faults_[peer].drop_probability = probability;
}

void Network::SetLinkPartitioned(int peer, bool partitioned) {
  LinkFault& fault = link_faults_[peer];
  if (fault.partitioned == partitioned) {
    return;
  }
  fault.partitioned = partitioned;
  if (partitioned) {
    return;
  }
  // Heal: flush held messages in arrival order, each over a fresh hop.
  std::vector<DeliverFn> held = std::move(fault.held);
  fault.held.clear();
  for (DeliverFn& fn : held) {
    ++messages_delivered_;
    sim_->Schedule(SampleHop(peer), std::move(fn));
  }
}

bool Network::LinkPartitioned(int peer) const {
  const auto it = link_faults_.find(peer);
  return it != link_faults_.end() && it->second.partitioned;
}

}  // namespace mitt::cluster
