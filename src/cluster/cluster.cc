#include "src/cluster/cluster.h"

#include <cassert>

#include "src/sim/sharded_engine.h"

namespace mitt::cluster {

Cluster::Cluster(sim::Simulator* sim, const Options& options) : options_(options) {
  network_ = std::make_unique<Network>(sim, options_.network, options_.seed ^ 0xBEEF);
  if (options_.shared_cpu_cores > 0) {
    shared_cpu_ = std::make_unique<CpuPool>(sim, options_.shared_cpu_cores);
  }
  nodes_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<kv::DocStoreNode>(sim, i, options_.node,
                                                        shared_cpu_.get()));
  }
}

Cluster::Cluster(sim::ShardedEngine* engine, const Options& options) : options_(options) {
  assert(options_.shared_cpu_cores == 0 && "shared CPU pool is cross-shard state");
  const int num_shards = engine->num_shards();
  network_ = std::make_unique<Network>(engine->shard(0), options_.network,
                                       options_.seed ^ 0xBEEF);
  std::vector<int> node_shard(static_cast<size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    node_shard[static_cast<size_t>(i)] =
        static_cast<int>(static_cast<int64_t>(i) * num_shards / options_.num_nodes);
  }
  network_->AttachShards(engine, node_shard);
  nodes_.reserve(static_cast<size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<kv::DocStoreNode>(
        engine->shard(node_shard[static_cast<size_t>(i)]), i, options_.node, nullptr));
  }
}

std::vector<int> Cluster::ReplicasOf(uint64_t key) const {
  std::vector<int> replicas;
  replicas.reserve(static_cast<size_t>(options_.replication));
  // Ring placement: primary by key hash, successors as replicas.
  const uint64_t mixed = key * 0x9E37'79B9'7F4A'7C15ULL;
  const int primary = static_cast<int>(mixed % static_cast<uint64_t>(options_.num_nodes));
  for (int r = 0; r < options_.replication; ++r) {
    replicas.push_back((primary + r) % options_.num_nodes);
  }
  return replicas;
}

void Cluster::WarmAll(double fraction) {
  for (auto& node : nodes_) {
    node->WarmCache(fraction);
  }
}

}  // namespace mitt::cluster
