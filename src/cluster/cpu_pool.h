// A node's CPU: `cores` identical servers draining a FIFO queue of CPU
// bursts. Captures the hedge-induced CPU contention of §7.5: when more
// request-handler threads are runnable than there are hardware threads
// (12 threads on an 8-thread machine), handler bursts queue and the extra
// wait shows up as a latency tail.
//
// Job completions are common::InlineFunction (48-byte SBO, move-only): the
// Execute->fire path allocates only when a capture outgrows the inline
// buffer, extending the PR-1 alloc-free hot path through the cluster layer.
//
// Fault injection (src/fault/): PauseFor models a stop-the-world event (GC,
// hypervisor freeze) — bursts already on a core finish, but no queued or
// newly arriving burst starts until the pause lifts.

#ifndef MITTOS_CLUSTER_CPU_POOL_H_
#define MITTOS_CLUSTER_CPU_POOL_H_

#include <deque>

#include "src/common/inline_function.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

class CpuPool {
 public:
  using DoneFn = InlineFunction<void()>;

  CpuPool(sim::Simulator* sim, int cores);

  // Consumes `work` of CPU, then calls `done`. Zero work calls back on the
  // next event (still through the queue, preserving FIFO fairness).
  void Execute(DurationNs work, DoneFn done);

  // Stop-the-world pause until Now() + duration (overlapping pauses extend
  // to the furthest end). Queued jobs keep their FIFO order and start when
  // the pause lifts.
  void PauseFor(DurationNs duration);
  bool paused() const { return sim_->Now() < paused_until_; }

  int active() const { return active_; }
  int cores() const { return cores_; }
  size_t queued() const { return queue_.size(); }
  uint64_t pauses() const { return pauses_; }

 private:
  struct Job {
    DurationNs work;
    DoneFn done;
  };

  void StartNext();
  void OnResume();

  sim::Simulator* sim_;
  int cores_;
  int active_ = 0;
  TimeNs paused_until_ = 0;
  uint64_t pauses_ = 0;
  std::deque<Job> queue_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_CPU_POOL_H_
