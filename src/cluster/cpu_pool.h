// A node's CPU: `cores` identical servers draining a FIFO queue of CPU
// bursts. Captures the hedge-induced CPU contention of §7.5: when more
// request-handler threads are runnable than there are hardware threads
// (12 threads on an 8-thread machine), handler bursts queue and the extra
// wait shows up as a latency tail.

#ifndef MITTOS_CLUSTER_CPU_POOL_H_
#define MITTOS_CLUSTER_CPU_POOL_H_

#include <deque>
#include <functional>

#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

class CpuPool {
 public:
  CpuPool(sim::Simulator* sim, int cores);

  // Consumes `work` of CPU, then calls `done`. Zero work calls back on the
  // next event (still through the queue, preserving FIFO fairness).
  void Execute(DurationNs work, std::function<void()> done);

  int active() const { return active_; }
  int cores() const { return cores_; }
  size_t queued() const { return queue_.size(); }

 private:
  struct Job {
    DurationNs work;
    std::function<void()> done;
  };

  void StartNext();

  sim::Simulator* sim_;
  int cores_;
  int active_ = 0;
  std::deque<Job> queue_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_CPU_POOL_H_
