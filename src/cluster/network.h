// Point-to-point datacenter network model. The paper's testbed and EC2 both
// show ~0.3 ms for a failover hop (§3.3); we model a one-way message latency
// of ~150 us with small jitter, so a request/reply round trip is ~0.3 ms.
//
// Fault injection (src/fault/): deliveries are tagged with the node endpoint
// they enter or leave (`peer`), so per-link faults can be applied —
//  * delay multipliers (congested / degraded links),
//  * probabilistic loss, modeled as lost-then-retransmitted: the message is
//    redelivered one retransmit timeout later, so application timeout and
//    hedging paths trigger while closed request loops stay live,
//  * transient partitions: messages are held and delivered (fresh hop each)
//    when the partition heals.
// All fault randomness comes from the network's own seeded RNG, keeping runs
// bit-identical at any MITT_TRIAL_WORKERS setting.
//
// Delivery closures are common::InlineFunction (48-byte SBO, move-only), so
// the per-hop schedule path allocates only when a capture outgrows the
// inline buffer — the PR-1 alloc-free hot path extended through the cluster
// layer.

#ifndef MITTOS_CLUSTER_NETWORK_H_
#define MITTOS_CLUSTER_NETWORK_H_

#include <unordered_map>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

struct NetworkParams {
  DurationNs one_way = Micros(150);
  DurationNs jitter = Micros(15);  // Uniform +/- jitter.
  // Retransmit timeout for messages lost to kNetworkDrop faults.
  DurationNs retransmit_timeout = Millis(200);
};

class Network {
 public:
  // Deliveries not tied to a node endpoint (client-to-client control
  // traffic); only fabric-wide faults apply to them.
  static constexpr int kNoPeer = -1;

  using DeliverFn = InlineFunction<void()>;

  Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed);

  // Delivers `fn` after one network hop; `peer` is the node endpoint the
  // message enters or leaves (for per-link fault application).
  void Deliver(DeliverFn fn) { Deliver(kNoPeer, std::move(fn)); }
  void Deliver(int peer, DeliverFn fn);

  DurationNs round_trip_estimate() const { return 2 * params_.one_way; }
  const NetworkParams& params() const { return params_; }

  // --- Fault hooks (src/fault/) ---
  // `peer` < 0 targets the whole fabric; multipliers/probabilities reset to
  // the healthy values (1.0 / 0.0) when the episode ends.
  void SetLinkDelayMultiplier(int peer, double multiplier);
  void SetLinkDropProbability(int peer, double probability);
  // Entering a partition holds subsequent deliveries; leaving it flushes the
  // held messages in arrival order, each with a fresh network hop.
  void SetLinkPartitioned(int peer, bool partitioned);
  bool LinkPartitioned(int peer) const;

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }   // Retransmitted.
  uint64_t messages_deferred() const { return messages_deferred_; }  // Partition-held.

 private:
  struct LinkFault {
    double delay_multiplier = 1.0;
    double drop_probability = 0.0;
    bool partitioned = false;
    std::vector<DeliverFn> held;  // Messages awaiting partition heal.
  };

  DurationNs SampleHop(int peer);

  sim::Simulator* sim_;
  NetworkParams params_;
  Rng rng_;
  double fabric_delay_multiplier_ = 1.0;
  double fabric_drop_probability_ = 0.0;
  std::unordered_map<int, LinkFault> link_faults_;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_deferred_ = 0;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_NETWORK_H_
