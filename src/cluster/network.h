// Point-to-point datacenter network model. The paper's testbed and EC2 both
// show ~0.3 ms for a failover hop (§3.3); we model a one-way message latency
// of ~150 us with small jitter, so a request/reply round trip is ~0.3 ms.
//
// Fault injection (src/fault/): deliveries are tagged with the node endpoint
// they enter or leave (`peer`), so per-link faults can be applied —
//  * delay multipliers (congested / degraded links),
//  * probabilistic loss, modeled as lost-then-retransmitted: the message is
//    redelivered one retransmit timeout later, so application timeout and
//    hedging paths trigger while closed request loops stay live,
//  * transient partitions: messages are held and delivered (fresh hop each)
//    when the partition heals.
// All fault randomness comes from the network's own seeded RNGs, keeping runs
// bit-identical at any MITT_TRIAL_WORKERS setting.
//
// Sharded mode (src/sim/sharded_engine.h): the network is the one layer that
// crosses shard boundaries, so it owns the cross-shard routing rules:
//  * one RNG *lane* per source shard — hop jitter and drop draws consumed
//    only by that shard's thread, so sequences are independent of worker
//    interleaving. Lane 0 continues the unsharded network's stream, which is
//    what keeps single-shard runs bit-identical with the legacy engine.
//  * a delivery names its destination shard: same-shard hops schedule
//    directly on the local simulator (the legacy fast path), cross-shard
//    hops post timestamped messages into the engine's mailboxes. Every hop
//    takes >= one_way - jitter, which is exactly the engine's lookahead.
//  * link-fault state (multipliers, drops, partitions) is only mutated while
//    the engine is quiesced (fault episodes run as global events), so shard
//    threads may read it without synchronization.
//  * partition-held messages are buffered per source lane and flushed in
//    (lane, arrival) order at heal time — a deterministic merge.
//
// Delivery closures are common::InlineFunction (48-byte SBO, move-only), so
// the per-hop schedule path allocates only when a capture outgrows the
// inline buffer — the PR-1 alloc-free hot path extended through the cluster
// layer (cross-shard mailbox slots retain capacity; see tests/alloc_test.cc).

#ifndef MITTOS_CLUSTER_NETWORK_H_
#define MITTOS_CLUSTER_NETWORK_H_

#include <unordered_map>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

struct NetworkParams {
  DurationNs one_way = Micros(150);
  DurationNs jitter = Micros(15);  // Uniform +/- jitter.
  // Retransmit timeout for messages lost to kNetworkDrop faults.
  DurationNs retransmit_timeout = Millis(200);
};

// The conservative lookahead a ShardedEngine may use when this network is
// the only shard-crossing layer: the minimum possible one-way hop.
inline DurationNs MinOneWayHop(const NetworkParams& params) {
  return params.one_way - params.jitter;
}

class Network {
 public:
  // Deliveries not tied to a node endpoint (client-to-client control
  // traffic); only fabric-wide faults apply to them.
  static constexpr int kNoPeer = -1;

  using DeliverFn = InlineFunction<void()>;

  Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed);

  // Binds the network to a sharded engine: `node_shard[n]` is the shard that
  // owns node n. Call once, before any traffic. Lane 0 keeps the unsharded
  // RNG stream; lane s>0 gets an independent stream derived from the seed.
  void AttachShards(sim::ShardedEngine* engine, std::vector<int> node_shard);

  // Shard owning `node`; 0 when unsharded. kNoPeer maps to shard 0.
  int ShardOfNode(int node) const {
    return node >= 0 && node < static_cast<int>(node_shard_.size())
               ? node_shard_[static_cast<size_t>(node)]
               : 0;
  }

  // Delivers `fn` after one network hop; `peer` is the node endpoint the
  // message enters or leaves (for per-link fault application). The two
  // legacy overloads deliver onto the *calling* shard — unchanged semantics
  // for unsharded worlds and for shard-local control traffic.
  void Deliver(DeliverFn fn) { Deliver(kNoPeer, std::move(fn)); }
  void Deliver(int peer, DeliverFn fn);
  // Shard-routed delivery: `fn` runs on `dst_shard`'s simulator.
  void Deliver(int peer, int dst_shard, DeliverFn fn);
  // Convenience: deliver onto the shard that owns `node`, tagged with it.
  void DeliverToNode(int node, DeliverFn fn) {
    Deliver(node, ShardOfNode(node), std::move(fn));
  }

  DurationNs round_trip_estimate() const { return 2 * params_.one_way; }
  const NetworkParams& params() const { return params_; }

  // --- Fault hooks (src/fault/) ---
  // `peer` < 0 targets the whole fabric; multipliers/probabilities reset to
  // the healthy values (1.0 / 0.0) when the episode ends. In sharded mode
  // these must only be called while the engine is quiesced (the fault
  // injector routes episodes through ShardedEngine::ScheduleGlobal).
  void SetLinkDelayMultiplier(int peer, double multiplier);
  void SetLinkDropProbability(int peer, double probability);
  // Entering a partition holds subsequent deliveries; leaving it flushes the
  // held messages in (source lane, arrival) order, each with a fresh hop.
  void SetLinkPartitioned(int peer, bool partitioned);
  bool LinkPartitioned(int peer) const;

  // Aggregated over lanes; read at harvest time (quiesced).
  uint64_t messages_delivered() const;
  uint64_t messages_dropped() const;   // Retransmitted.
  uint64_t messages_deferred() const;  // Partition-held.
  uint64_t cross_shard_hops() const;

 private:
  struct LinkFault {
    double delay_multiplier = 1.0;
    double drop_probability = 0.0;
    bool partitioned = false;
  };

  struct HeldMsg {
    int peer;
    int dst_shard;
    DeliverFn fn;
  };

  // Per-source-shard state, touched only by that shard's thread during a
  // window (and by the quiesced coordinator at barriers). Aligned out to a
  // cache line so two shards' RNG draws never false-share.
  struct alignas(64) Lane {
    Rng rng{0};
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t deferred = 0;
    uint64_t cross_hops = 0;
    std::vector<HeldMsg> held;  // Messages awaiting partition heal.
  };

  DurationNs SampleHop(Lane& lane, int peer);
  // Samples a hop from `src`'s lane and routes: local schedule when
  // dst_shard == src (or unsharded), engine mailbox post otherwise.
  void DeliverHop(int src, int peer, int dst_shard, DeliverFn fn);

  sim::Simulator* sim_;
  sim::ShardedEngine* engine_ = nullptr;
  NetworkParams params_;
  uint64_t seed_ = 0;
  std::vector<Lane> lanes_;  // lanes_[0] exists even unsharded.
  std::vector<int> node_shard_;
  double fabric_delay_multiplier_ = 1.0;
  double fabric_drop_probability_ = 0.0;
  std::unordered_map<int, LinkFault> link_faults_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_NETWORK_H_
