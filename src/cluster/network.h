// Point-to-point datacenter network model. The paper's testbed and EC2 both
// show ~0.3 ms for a failover hop (§3.3); we model a one-way message latency
// of ~150 us with small jitter, so a request/reply round trip is ~0.3 ms.

#ifndef MITTOS_CLUSTER_NETWORK_H_
#define MITTOS_CLUSTER_NETWORK_H_

#include <functional>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

struct NetworkParams {
  DurationNs one_way = Micros(150);
  DurationNs jitter = Micros(15);  // Uniform +/- jitter.
};

class Network {
 public:
  Network(sim::Simulator* sim, const NetworkParams& params, uint64_t seed);

  // Delivers `fn` after one network hop.
  void Deliver(std::function<void()> fn);

  DurationNs round_trip_estimate() const { return 2 * params_.one_way; }
  const NetworkParams& params() const { return params_; }

 private:
  sim::Simulator* sim_;
  NetworkParams params_;
  Rng rng_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_NETWORK_H_
