// A replicated DocStore deployment: N nodes, every key replicated on 3 of
// them (§3.1's deployment model), one shared network.

#ifndef MITTOS_CLUSTER_CLUSTER_H_
#define MITTOS_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/kv/doc_store_node.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

class Cluster {
 public:
  struct Options {
    int num_nodes = 20;
    int replication = 3;
    kv::DocStoreNode::Options node;
    NetworkParams network;
    // >0: every node handler contends for one shared CPU pool of this many
    // cores (the §7.5 one-machine/many-processes deployment).
    int shared_cpu_cores = 0;
    uint64_t seed = 1;
  };

  Cluster(sim::Simulator* sim, const Options& options);

  kv::DocStoreNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Network& network() { return *network_; }
  const Options& options() const { return options_; }

  // The `replication` nodes holding `key`, primary first.
  std::vector<int> ReplicasOf(uint64_t key) const;

  // Warms every node's cache to the given fraction of its dataset.
  void WarmAll(double fraction);

 private:
  Options options_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<CpuPool> shared_cpu_;
  std::vector<std::unique_ptr<kv::DocStoreNode>> nodes_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_CLUSTER_H_
