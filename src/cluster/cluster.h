// A replicated DocStore deployment: N nodes, every key replicated on 3 of
// them (§3.1's deployment model), one shared network.

#ifndef MITTOS_CLUSTER_CLUSTER_H_
#define MITTOS_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/network.h"
#include "src/kv/doc_store_node.h"
#include "src/sim/simulator.h"

namespace mitt::cluster {

class Cluster {
 public:
  struct Options {
    int num_nodes = 20;
    int replication = 3;
    kv::DocStoreNode::Options node;
    NetworkParams network;
    // >0: every node handler contends for one shared CPU pool of this many
    // cores (the §7.5 one-machine/many-processes deployment).
    int shared_cpu_cores = 0;
    uint64_t seed = 1;
  };

  Cluster(sim::Simulator* sim, const Options& options);

  // Sharded deployment: node n lives on shard n*S/N (contiguous blocks, so
  // a replica group of consecutive ring successors usually shares a shard),
  // each node's full stack (OS, devices, scheduler, cache) built on its
  // shard's simulator. The network is attached to the engine with the
  // node->shard map; shard counts must not depend on worker count (the
  // engine's determinism contract). Incompatible with shared_cpu_cores — a
  // shared CPU pool is inherently cross-node state.
  Cluster(sim::ShardedEngine* engine, const Options& options);

  kv::DocStoreNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Network& network() { return *network_; }
  const Options& options() const { return options_; }

  // Shard owning node i (0 when built on a plain Simulator).
  int shard_of_node(int i) const { return network_->ShardOfNode(i); }

  // The `replication` nodes holding `key`, primary first.
  std::vector<int> ReplicasOf(uint64_t key) const;

  // Warms every node's cache to the given fraction of its dataset.
  void WarmAll(double fraction);

 private:
  Options options_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<CpuPool> shared_cpu_;
  std::vector<std::unique_ptr<kv::DocStoreNode>> nodes_;
};

}  // namespace mitt::cluster

#endif  // MITTOS_CLUSTER_CLUSTER_H_
