#include "src/cluster/cpu_pool.h"

#include <utility>

namespace mitt::cluster {

CpuPool::CpuPool(sim::Simulator* sim, int cores) : sim_(sim), cores_(cores) {}

void CpuPool::Execute(DurationNs work, DoneFn done) {
  queue_.push_back({work, std::move(done)});
  StartNext();
}

void CpuPool::PauseFor(DurationNs duration) {
  const TimeNs until = sim_->Now() + duration;
  if (until <= paused_until_) {
    return;  // Subsumed by an already-pending pause.
  }
  const bool was_paused = paused();
  paused_until_ = until;
  ++pauses_;
  if (was_paused) {
    return;  // The existing resume event fires early and reschedules.
  }
  // Non-daemon: queued jobs must still complete after the pause lifts even
  // if no other foreground events remain.
  sim_->Schedule(duration, [this] { OnResume(); });
}

void CpuPool::OnResume() {
  if (sim_->Now() < paused_until_) {
    // The pause was extended after this event was scheduled.
    sim_->Schedule(paused_until_ - sim_->Now(), [this] { OnResume(); });
    return;
  }
  StartNext();
}

void CpuPool::StartNext() {
  while (active_ < cores_ && !queue_.empty() && !paused()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    sim_->Schedule(job.work, [this, done = std::move(job.done)]() mutable {
      --active_;
      if (done) {
        done();
      }
      StartNext();
    });
  }
}

}  // namespace mitt::cluster
