#include "src/cluster/cpu_pool.h"

#include <utility>

namespace mitt::cluster {

CpuPool::CpuPool(sim::Simulator* sim, int cores) : sim_(sim), cores_(cores) {}

void CpuPool::Execute(DurationNs work, std::function<void()> done) {
  queue_.push_back({work, std::move(done)});
  StartNext();
}

void CpuPool::StartNext() {
  while (active_ < cores_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    sim_->Schedule(job.work, [this, done = std::move(job.done)] {
      --active_;
      if (done) {
        done();
      }
      StartNext();
    });
  }
}

}  // namespace mitt::cluster
