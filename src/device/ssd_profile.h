// SSD latency profiling (§4.3).
//
// MittSSD needs the chip-level read/write latencies and the channel speed,
// "which can be obtained from the vendor's NAND specification or profiling."
// This profiler measures them the way the paper describes: it injects a
// single page read to an idle chip (end-to-end page read time), concurrent
// reads to multiple chips behind one channel (per-IO channel queueing delay),
// one program per block position (the 512-item "11111121121122...2112"
// pattern), and an erase.

#ifndef MITTOS_DEVICE_SSD_PROFILE_H_
#define MITTOS_DEVICE_SSD_PROFILE_H_

#include <vector>

#include "src/common/time.h"
#include "src/device/ssd_model.h"
#include "src/sim/simulator.h"

namespace mitt::device {

struct SsdProfile {
  DurationNs page_read_total = 0;  // Chip read + channel transfer (~100 us).
  DurationNs channel_delay = 0;    // Queueing delay per outstanding same-channel IO.
  DurationNs erase_time = 0;
  // Program time for each page position within a block (512 items for the
  // paper's device); stored once because "the pattern is the same for every
  // block."
  std::vector<DurationNs> program_time_by_block_pos;

  bool valid() const { return page_read_total > 0; }
  DurationNs ProgramTime(int block_pos) const {
    if (program_time_by_block_pos.empty()) {
      return 0;
    }
    return program_time_by_block_pos[static_cast<size_t>(block_pos) %
                                     program_time_by_block_pos.size()];
  }
};

// One-time profiling pass on a dedicated idle SSD.
SsdProfile ProfileSsd(sim::Simulator* sim, SsdModel* ssd, int samples = 8);

}  // namespace mitt::device

#endif  // MITTOS_DEVICE_SSD_PROFILE_H_
