// Disk latency profiling (Appendix A).
//
// The MittNoop/MittCFQ predictors must not peek at the DiskModel's ground
// truth parameters; like the paper, they use a profile obtained by measuring
// the device: "we measure the latency (seek cost) of all pairs of random IOs
// per GB distance ... and use linear regression for more accuracy."
//
// DiskProfiler issues isolated IO pairs at controlled distances on an
// otherwise idle simulated disk, builds a distance->cost table (which absorbs
// seek structure and mean rotational latency), and estimates per-KB transfer
// cost from a size sweep. DiskProfile interpolates the table at predict time
// in O(log #buckets).

#ifndef MITTOS_DEVICE_DISK_PROFILE_H_
#define MITTOS_DEVICE_DISK_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/device/disk_model.h"
#include "src/sched/io_request.h"

namespace mitt::device {

class DiskProfile {
 public:
  DiskProfile() = default;

  struct Bucket {
    double distance_gb;
    DurationNs cost;  // Mean positioning cost (seek + rotation) at distance.
  };

  DiskProfile(std::vector<Bucket> buckets, DurationNs transfer_per_kb,
              DurationNs write_ack_latency);

  // Predicted service time for `io` when the head currently sits at
  // `from_offset`. This is the T_processNewIO of §4.1.
  DurationNs PredictServiceTime(int64_t from_offset, const sched::IoRequest& io) const;

  // Positioning cost only (no transfer), used by queue-order modelling.
  DurationNs PositioningCost(int64_t from_offset, int64_t to_offset) const;

  DurationNs transfer_per_kb() const { return transfer_per_kb_; }
  bool valid() const { return !buckets_.empty(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  std::vector<Bucket> buckets_;  // Sorted by distance_gb.
  DurationNs transfer_per_kb_ = 0;
  DurationNs write_ack_latency_ = 0;
};

struct DiskProfilerOptions {
  int samples_per_bucket = 12;
  std::vector<double> distances_gb = {0.0, 0.5,   1.0,   2.0,   5.0,   10.0,  20.0,
                                      50.0, 100.0, 200.0, 400.0, 700.0, 950.0};
  uint64_t seed = 42;
};

// Runs the one-time profiling pass (the paper's took 11 hours of wall time on
// a real disk; here it is simulated). The simulator and disk must be
// dedicated to the profiler while it runs.
DiskProfile ProfileDisk(sim::Simulator* sim, DiskModel* disk,
                        const DiskProfilerOptions& options = {});

}  // namespace mitt::device

#endif  // MITTOS_DEVICE_DISK_PROFILE_H_
