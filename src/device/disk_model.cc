#include "src/device/disk_model.h"

#include <algorithm>
#include <cmath>

namespace mitt::device {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

}  // namespace

DiskModel::DiskModel(sim::Simulator* sim, const DiskParams& params, uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {}

bool DiskModel::CanAccept() const { return Occupancy() < params_.queue_depth; }

DurationNs DiskModel::SeekCost(int64_t from_offset, int64_t to_offset) const {
  const double dist_gb =
      std::abs(static_cast<double>(to_offset - from_offset)) / kBytesPerGb;
  if (dist_gb < 1e-6) {
    // Near-sequential access: no seek, track-to-track settle only.
    return params_.seek_base / 10;
  }
  const double seek = static_cast<double>(params_.seek_base) +
                      static_cast<double>(params_.seek_per_gb) * dist_gb +
                      static_cast<double>(params_.seek_sqrt_coeff) * std::sqrt(dist_gb);
  return static_cast<DurationNs>(seek);
}

DurationNs DiskModel::ExpectedServiceTime(int64_t from_offset,
                                          const sched::IoRequest& io) const {
  if (io.op == sched::IoOp::kWrite && params_.nvram_writes) {
    return params_.nvram_latency;
  }
  const DurationNs transfer = params_.transfer_per_kb * std::max<int64_t>(1, io.size / 1024);
  return SeekCost(from_offset, io.offset) + params_.rotational_max / 2 + transfer;
}

DurationNs DiskModel::SampledServiceTime(int64_t from_offset, const sched::IoRequest& io) {
  const DurationNs transfer = params_.transfer_per_kb * std::max<int64_t>(1, io.size / 1024);
  const DurationNs rotation =
      static_cast<DurationNs>(rng_.NextDouble() * static_cast<double>(params_.rotational_max));
  const double jitter = rng_.Uniform(1.0 - params_.jitter, 1.0 + params_.jitter);
  const double total = static_cast<double>(SeekCost(from_offset, io.offset) + rotation + transfer) *
                       jitter * service_multiplier_;
  return static_cast<DurationNs>(total);
}

void DiskModel::Submit(sched::IoRequest* req) {
  if (req->op == sched::IoOp::kWrite && params_.nvram_writes) {
    // Acknowledge from NVRAM, then destage to the platters in the background.
    // The destage occupies the head like any other IO but reports to no one.
    sched::IoRequest* destage = destage_pool_.Acquire();
    destage->id = (0xD000'0000'0000'0000ULL | destage_seq_++);
    destage->dispatch_time = sim_->Now();
    destage->op = sched::IoOp::kWrite;
    destage->offset = req->offset;
    destage->size = req->size;
    destage->pid = req->pid;
    queue_.push_back(destage);
    if (in_service_ == nullptr) {
      StartNext();
    }
    sched::IoRequest* ack = req;
    sim_->Schedule(params_.nvram_latency, [this, ack] {
      ++completed_;
      if (listener_ != nullptr) {
        listener_(ack);
      }
    });
    return;
  }

  req->dispatch_time = sim_->Now();
  queue_.push_back(req);
  if (in_service_ == nullptr) {
    StartNext();
  }
}

void DiskModel::StartNext() {
  // The completion listener may have already pushed and started a new IO by
  // the time OnServiceDone's trailing StartNext runs.
  if (in_service_ != nullptr || queue_.empty()) {
    return;
  }
  // SSTF: pick the pending IO with the cheapest seek from the current head.
  auto best = queue_.begin();
  DurationNs best_cost = SeekCost(head_pos_, (*best)->offset);
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const DurationNs cost = SeekCost(head_pos_, (*it)->offset);
    if (cost < best_cost) {
      best = it;
      best_cost = cost;
    }
  }
  // Anti-starvation aging: the oldest waiter beats SSTF once it has waited
  // past the starvation bound.
  auto oldest = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->dispatch_time < (*oldest)->dispatch_time) {
      oldest = it;
    }
  }
  if (sim_->Now() - (*oldest)->dispatch_time > params_.max_starvation) {
    best = oldest;
  }

  sched::IoRequest* req = *best;
  queue_.erase(best);

  const DurationNs service = SampledServiceTime(head_pos_, *req);
  in_service_ = req;
  in_service_done_ = sim_->Now() + service;
  sim_->Schedule(service, [this, req] { OnServiceDone(req); });
}

void DiskModel::OnServiceDone(sched::IoRequest* req) {
  head_pos_ = req->offset + req->size;
  in_service_ = nullptr;
  ++completed_;

  const bool is_destage = (req->id & 0xF000'0000'0000'0000ULL) == 0xD000'0000'0000'0000ULL;
  if (is_destage) {
    destage_pool_.Release(req);
    if (capacity_listener_) {
      capacity_listener_();
    }
  } else if (listener_ != nullptr) {
    listener_(req);
  }
  StartNext();
}

}  // namespace mitt::device
