// Host-managed (OpenChannel-style) SSD model (§4.3).
//
// The device exposes its full internal topology to the host: `num_channels`
// channels, each with `chips_per_channel` NAND chips. Logical pages are
// striped round-robin across chips. Every chip is a FIFO server for media
// operations (read / program / erase); every channel is a FIFO server for
// page transfers. A page read costs ~40 us of chip time plus a 60 us channel
// transfer (100 us end-to-end when uncontended, matching the paper's
// OpenChannel SSD). Program time depends on whether the page maps to the
// lower or upper bits of its MLC cell: the per-block pattern is the paper's
// "11111121121122...2112" (1 = 1 ms, 2 = 2 ms). Erases cost 6 ms.
//
// Large IOs are chopped into per-page sub-IOs (a >16 KB read to a chip "is
// automatically chopped to individual page reads"); the parent completes when
// the last sub-IO does.

#ifndef MITTOS_DEVICE_SSD_MODEL_H_
#define MITTOS_DEVICE_SSD_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/ring_queue.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sched/io_pool.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::device {

struct SsdParams {
  int num_channels = 16;
  int chips_per_channel = 8;  // 128 chips total, as in the paper's device.
  int64_t page_size = 16 * 1024;
  int pages_per_block = 512;

  DurationNs chip_read = Micros(40);      // Media read (cell -> chip buffer).
  DurationNs channel_xfer = Micros(60);   // Page transfer over the channel.
  DurationNs program_fast = Millis(1);    // Lower-page program.
  DurationNs program_slow = Millis(2);    // Upper-page program.
  DurationNs erase = Millis(6);

  double jitter = 0.01;  // Multiplicative media-time jitter.
};

class SsdModel {
 public:
  SsdModel(sim::Simulator* sim, const SsdParams& params, uint64_t seed);

  SsdModel(const SsdModel&) = delete;
  SsdModel& operator=(const SsdModel&) = delete;

  // Chips never refuse work (they queue internally); the predictor's job is
  // exactly to know when that queue is too deep.
  void Submit(sched::IoRequest* req);

  void set_completion_listener(std::function<void(sched::IoRequest*)> listener) {
    listener_ = std::move(listener);
  }

  // --- White-box topology (available to the host under LightNVM) ---
  int num_chips() const { return params_.num_channels * params_.chips_per_channel; }
  int ChipOfPage(int64_t logical_page) const {
    return static_cast<int>(logical_page % num_chips());
  }
  int ChannelOfChip(int chip) const { return chip % params_.num_channels; }
  int64_t PageOfOffset(int64_t offset) const { return offset / params_.page_size; }
  // True program time class of a page within its block (1 = fast, 2 = slow).
  bool IsSlowPage(int64_t logical_page) const;

  const SsdParams& params() const { return params_; }

  // Observability for predictors/tests: chip busy-until and per-channel
  // outstanding transfer counts. The MittSSD predictor keeps its own shadow
  // copies (as the kernel would); tests use these to cross-check.
  size_t ChipQueueDepth(int chip) const { return chips_[chip].queue.size(); }
  bool ChipBusy(int chip) const { return chips_[chip].busy; }
  size_t ChannelOutstanding(int channel) const { return channels_[channel].outstanding; }

  // --- Read-retry storm injection (src/fault/) ---
  // Media reads on `chip` take `m`x their profiled time (firmware re-reading
  // a marginal page with shifted reference voltages). Applied at media start,
  // chip-local — programs, erases, and other chips are unaffected, and the
  // MittSSD predictor's shadow model keeps assuming the healthy read time.
  void set_chip_read_multiplier(int chip, double m) {
    chips_[static_cast<size_t>(chip)].read_multiplier = m;
  }
  double chip_read_multiplier(int chip) const {
    return chips_[static_cast<size_t>(chip)].read_multiplier;
  }

  uint64_t completed_count() const { return completed_; }

 private:
  struct SubIo {
    sched::IoRequest* parent = nullptr;
    int64_t logical_page = 0;
    sched::IoOp op = sched::IoOp::kRead;
    uint64_t erase_cookie = 0;  // For erase ops injected by GC.
  };

  struct Chip {
    RingQueue<SubIo> queue;
    bool busy = false;
    double read_multiplier = 1.0;  // Fail-slow media (read-retry storms).
  };

  struct Channel {
    RingQueue<SubIo> queue;
    bool busy = false;
    size_t outstanding = 0;  // Sub-IOs somewhere between submit and done.
  };

  void EnqueueChip(int chip, SubIo sub);
  void StartChip(int chip);
  void OnMediaDone(int chip, SubIo sub);
  void EnqueueChannel(int channel, SubIo sub);
  void StartChannel(int channel);
  void OnTransferDone(int channel, SubIo sub);
  void FinishSub(const SubIo& sub);

  DurationNs MediaTime(const SubIo& sub);

  sim::Simulator* sim_;
  SsdParams params_;
  Rng rng_;
  std::function<void(sched::IoRequest*)> listener_;

  std::vector<Chip> chips_;
  std::vector<Channel> channels_;

  // Outstanding sub-IO counts live on the parent (IoRequest::subs_remaining).
  uint64_t completed_ = 0;
};

// Background garbage collection / wear-leveling noise source (§3.3, §4.3):
// periodically claims a chip for an erase plus a handful of page movements.
class SsdGc {
 public:
  struct Options {
    DurationNs mean_interval = Millis(200);  // Mean time between GC rounds.
    int pages_moved = 4;                     // Read+program pairs per round.
    bool enabled = true;
  };

  SsdGc(sim::Simulator* sim, SsdModel* ssd, const Options& options, uint64_t seed);

  void Start();
  void Stop();

  uint64_t rounds() const { return rounds_; }

 private:
  void RunRound();
  void ScheduleNext();

  sim::Simulator* sim_;
  SsdModel* ssd_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  uint64_t rounds_ = 0;
  uint64_t next_id_ = 0x6C00'0000'0000'0000ULL;
  // GC descriptors are pooled; each completion callback releases its slot.
  sched::IoRequestPool pool_;
};

}  // namespace mitt::device

#endif  // MITTOS_DEVICE_SSD_MODEL_H_
