#include "src/device/disk_profile.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace mitt::device {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

// Issues one IO on an idle disk and runs the simulator until it completes.
// Returns the measured service latency.
DurationNs MeasureOne(sim::Simulator* sim, DiskModel* disk, int64_t offset, int64_t size,
                      sched::IoOp op, uint64_t id) {
  sched::IoRequest req;
  req.id = id;
  req.op = op;
  req.offset = offset;
  req.size = size;
  const TimeNs start = sim->Now();
  bool done = false;
  TimeNs end = start;
  disk->set_completion_listener([&](sched::IoRequest*) {
    done = true;
    end = sim->Now();
  });
  disk->Submit(&req);
  sim->RunUntilPredicate([&] { return done; });
  disk->set_completion_listener(nullptr);
  return end - start;
}

}  // namespace

DiskProfile::DiskProfile(std::vector<Bucket> buckets, DurationNs transfer_per_kb,
                         DurationNs write_ack_latency)
    : buckets_(std::move(buckets)),
      transfer_per_kb_(transfer_per_kb),
      write_ack_latency_(write_ack_latency) {
  std::sort(buckets_.begin(), buckets_.end(),
            [](const Bucket& a, const Bucket& b) { return a.distance_gb < b.distance_gb; });
}

DurationNs DiskProfile::PositioningCost(int64_t from_offset, int64_t to_offset) const {
  if (buckets_.empty()) {
    return 0;
  }
  const double d = std::abs(static_cast<double>(to_offset - from_offset)) / kBytesPerGb;
  if (d <= buckets_.front().distance_gb) {
    return buckets_.front().cost;
  }
  if (d >= buckets_.back().distance_gb) {
    return buckets_.back().cost;
  }
  // Linear interpolation between the two surrounding buckets.
  const auto hi = std::lower_bound(
      buckets_.begin(), buckets_.end(), d,
      [](const Bucket& b, double dist) { return b.distance_gb < dist; });
  const auto lo = std::prev(hi);
  const double span = hi->distance_gb - lo->distance_gb;
  const double frac = span > 0 ? (d - lo->distance_gb) / span : 0.0;
  return lo->cost + static_cast<DurationNs>(
                        frac * static_cast<double>(hi->cost - lo->cost));
}

DurationNs DiskProfile::PredictServiceTime(int64_t from_offset,
                                           const sched::IoRequest& io) const {
  // Writes are acknowledged from the drive's NVRAM, but their destage still
  // occupies the head for a full mechanical IO; the predictor must charge
  // that (invisible-to-completion) load up front, or background flusher
  // traffic blindsides every read prediction.
  const DurationNs transfer = transfer_per_kb_ * std::max<int64_t>(1, io.size / 1024);
  return PositioningCost(from_offset, io.offset) + transfer;
}

DiskProfile ProfileDisk(sim::Simulator* sim, DiskModel* disk,
                        const DiskProfilerOptions& options) {
  Rng rng(options.seed);
  const int64_t capacity = disk->params().capacity_bytes;
  uint64_t next_id = 0xBEEF0000;

  // 1. Transfer cost: sequential re-reads at the same offset with growing
  // sizes; the positioning component is constant, so the slope is the per-KB
  // transfer cost.
  const int64_t size_lo = 4 * 1024;
  const int64_t size_hi = 1024 * 1024;
  double lat_lo = 0;
  double lat_hi = 0;
  for (int i = 0; i < options.samples_per_bucket; ++i) {
    const int64_t base = rng.UniformInt(0, capacity - 2 * size_hi);
    // Position the head at `base` with a warm-up IO, then time a same-place
    // read of each size.
    MeasureOne(sim, disk, base, 4096, sched::IoOp::kRead, next_id++);
    lat_lo += static_cast<double>(
        MeasureOne(sim, disk, base + 4096, size_lo, sched::IoOp::kRead, next_id++));
    MeasureOne(sim, disk, base, 4096, sched::IoOp::kRead, next_id++);
    lat_hi += static_cast<double>(
        MeasureOne(sim, disk, base + 4096, size_hi, sched::IoOp::kRead, next_id++));
  }
  lat_lo /= options.samples_per_bucket;
  lat_hi /= options.samples_per_bucket;
  const auto transfer_per_kb = static_cast<DurationNs>(
      (lat_hi - lat_lo) / (static_cast<double>(size_hi - size_lo) / 1024.0));

  // 2. Positioning cost per distance bucket: park the head at x, read at
  // x + d, subtract the transfer estimate.
  std::vector<DiskProfile::Bucket> buckets;
  for (const double d_gb : options.distances_gb) {
    const auto d_bytes = static_cast<int64_t>(d_gb * kBytesPerGb);
    double sum = 0;
    int n = 0;
    for (int i = 0; i < options.samples_per_bucket; ++i) {
      const int64_t x = rng.UniformInt(0, std::max<int64_t>(1, capacity - d_bytes - size_hi));
      MeasureOne(sim, disk, x, 4096, sched::IoOp::kRead, next_id++);
      const DurationNs lat =
          MeasureOne(sim, disk, x + 4096 + d_bytes, 4096, sched::IoOp::kRead, next_id++);
      sum += static_cast<double>(lat - transfer_per_kb * 4);
      ++n;
    }
    buckets.push_back({d_gb, static_cast<DurationNs>(sum / n)});
  }

  // 3. Write acknowledgement latency (NVRAM-buffered writes ack fast).
  double wsum = 0;
  for (int i = 0; i < options.samples_per_bucket; ++i) {
    const int64_t x = rng.UniformInt(0, capacity - size_hi);
    wsum += static_cast<double>(
        MeasureOne(sim, disk, x, 4096, sched::IoOp::kWrite, next_id++));
    // Drain the background destage before the next measurement.
    sim->Run();
  }
  const auto write_ack = static_cast<DurationNs>(wsum / options.samples_per_bucket);

  return DiskProfile(std::move(buckets), transfer_per_kb, write_ack);
}

}  // namespace mitt::device
