#include "src/device/ssd_profile.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace mitt::device {
namespace {

// Submits `reqs` together and runs until all complete. Returns each request's
// completion latency in submission order.
std::vector<DurationNs> MeasureBatch(sim::Simulator* sim, SsdModel* ssd,
                                     std::vector<std::unique_ptr<sched::IoRequest>> reqs) {
  const TimeNs start = sim->Now();
  size_t remaining = reqs.size();
  std::vector<DurationNs> latencies(reqs.size(), 0);
  std::vector<sched::IoRequest*> raw;
  raw.reserve(reqs.size());
  for (auto& r : reqs) {
    raw.push_back(r.get());
  }
  ssd->set_completion_listener([&](sched::IoRequest* done) {
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == done) {
        latencies[i] = sim->Now() - start;
        --remaining;
        break;
      }
    }
  });
  for (auto* r : raw) {
    ssd->Submit(r);
  }
  sim->RunUntilPredicate([&] { return remaining == 0; });
  ssd->set_completion_listener(nullptr);
  return latencies;
}

std::unique_ptr<sched::IoRequest> MakePageIo(const SsdModel& ssd, sched::IoOp op,
                                             int64_t logical_page, uint64_t id) {
  auto req = std::make_unique<sched::IoRequest>();
  req->id = id;
  req->op = op;
  req->offset = logical_page * ssd.params().page_size;
  req->size = ssd.params().page_size;
  return req;
}

}  // namespace

SsdProfile ProfileSsd(sim::Simulator* sim, SsdModel* ssd, int samples) {
  SsdProfile profile;
  uint64_t next_id = 0x55D0'0000;
  const int64_t stride = ssd->num_chips();

  // 1. End-to-end page read on an idle chip.
  double read_sum = 0;
  for (int i = 0; i < samples; ++i) {
    std::vector<std::unique_ptr<sched::IoRequest>> batch;
    batch.push_back(MakePageIo(*ssd, sched::IoOp::kRead, i * stride, next_id++));
    read_sum += static_cast<double>(MeasureBatch(sim, ssd, std::move(batch))[0]);
  }
  profile.page_read_total = static_cast<DurationNs>(read_sum / samples);

  // 2. Channel queueing delay: fire one read at every chip behind channel 0
  // simultaneously; the spread between consecutive completions is the per-IO
  // channel delay.
  {
    const int chips_behind = ssd->params().chips_per_channel;
    std::vector<std::unique_ptr<sched::IoRequest>> batch;
    for (int c = 0; c < chips_behind; ++c) {
      // Chip ids on channel 0 are c * num_channels; logical pages equal to
      // that chip id (mod num_chips) land there.
      const int chip = c * ssd->params().num_channels;
      batch.push_back(MakePageIo(*ssd, sched::IoOp::kRead, chip, next_id++));
    }
    auto lats = MeasureBatch(sim, ssd, std::move(batch));
    std::sort(lats.begin(), lats.end());
    double spread = 0;
    for (size_t i = 1; i < lats.size(); ++i) {
      spread += static_cast<double>(lats[i] - lats[i - 1]);
    }
    profile.channel_delay =
        static_cast<DurationNs>(spread / static_cast<double>(lats.size() - 1));
  }

  // 3. Program time per block position on chip 0.
  const int ppb = ssd->params().pages_per_block;
  profile.program_time_by_block_pos.resize(static_cast<size_t>(ppb));
  for (int pos = 0; pos < ppb; ++pos) {
    // In-chip page index == block position (first block); logical page is
    // pos * num_chips() for chip 0.
    std::vector<std::unique_ptr<sched::IoRequest>> batch;
    batch.push_back(
        MakePageIo(*ssd, sched::IoOp::kWrite, static_cast<int64_t>(pos) * stride, next_id++));
    const DurationNs lat = MeasureBatch(sim, ssd, std::move(batch))[0];
    // Subtract the inbound channel transfer to get chip program time.
    profile.program_time_by_block_pos[static_cast<size_t>(pos)] = lat - profile.channel_delay;
  }

  // 4. Erase.
  {
    std::vector<std::unique_ptr<sched::IoRequest>> batch;
    batch.push_back(MakePageIo(*ssd, sched::IoOp::kErase, 0, next_id++));
    batch.back()->op = sched::IoOp::kErase;
    profile.erase_time = MeasureBatch(sim, ssd, std::move(batch))[0];
  }

  return profile;
}

}  // namespace mitt::device
