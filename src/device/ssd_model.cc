#include "src/device/ssd_model.h"

#include <algorithm>
#include <cassert>

namespace mitt::device {

SsdModel::SsdModel(sim::Simulator* sim, const SsdParams& params, uint64_t seed)
    : sim_(sim), params_(params), rng_(seed) {
  chips_.resize(static_cast<size_t>(num_chips()));
  channels_.resize(static_cast<size_t>(params_.num_channels));
}

bool SsdModel::IsSlowPage(int64_t logical_page) const {
  // Position of this page within its physical block on its chip. Pages are
  // striped round-robin across chips, so the in-chip page index advances by
  // one for every num_chips() logical pages.
  const int64_t in_chip = logical_page / num_chips();
  const int pos = static_cast<int>(in_chip % params_.pages_per_block);
  // The paper's profiled program-time pattern ("1ms write time is needed for
  // pages #0-6, 2ms for page #7, 1ms for pages #8-9, and the middle pages
  // have a repeating pattern of '1122'", ending in "...2112"). We follow the
  // prose layout; the printed string in the paper drops one '1'.
  static constexpr std::string_view kPrefix = "1111111211";
  static constexpr std::string_view kTail = "2112";
  if (pos < static_cast<int>(kPrefix.size())) {
    return kPrefix[static_cast<size_t>(pos)] == '2';
  }
  const int tail_start = params_.pages_per_block - static_cast<int>(kTail.size());
  if (pos >= tail_start) {
    return kTail[static_cast<size_t>(pos - tail_start)] == '2';
  }
  return "1122"[static_cast<size_t>(pos - static_cast<int>(kPrefix.size())) % 4] == '2';
}

void SsdModel::Submit(sched::IoRequest* req) {
  req->dispatch_time = sim_->Now();
  if (req->op == sched::IoOp::kErase) {
    const int64_t page = PageOfOffset(req->offset);
    req->subs_remaining = 1;
    EnqueueChip(ChipOfPage(page), SubIo{req, page, sched::IoOp::kErase, 0});
    return;
  }

  const int64_t first_page = PageOfOffset(req->offset);
  const int64_t last_page = PageOfOffset(req->offset + std::max<int64_t>(req->size, 1) - 1);
  const int n = static_cast<int>(last_page - first_page + 1);
  req->subs_remaining = n;
  for (int64_t p = first_page; p <= last_page; ++p) {
    const SubIo sub{req, p, req->op, 0};
    const int chip = ChipOfPage(p);
    const int channel = ChannelOfChip(chip);
    ++channels_[channel].outstanding;
    if (req->op == sched::IoOp::kRead) {
      EnqueueChip(chip, sub);  // Media read first, then channel transfer.
    } else {
      EnqueueChannel(channel, sub);  // Data in over the channel, then program.
    }
  }
}

DurationNs SsdModel::MediaTime(const SubIo& sub) {
  DurationNs base = 0;
  switch (sub.op) {
    case sched::IoOp::kRead:
      base = static_cast<DurationNs>(
          static_cast<double>(params_.chip_read) *
          chips_[static_cast<size_t>(ChipOfPage(sub.logical_page))].read_multiplier);
      break;
    case sched::IoOp::kWrite:
      base = IsSlowPage(sub.logical_page) ? params_.program_slow : params_.program_fast;
      break;
    case sched::IoOp::kErase:
      base = params_.erase;
      break;
  }
  const double j = rng_.Uniform(1.0 - params_.jitter, 1.0 + params_.jitter);
  return static_cast<DurationNs>(static_cast<double>(base) * j);
}

void SsdModel::EnqueueChip(int chip, SubIo sub) {
  chips_[chip].queue.push_back(sub);
  StartChip(chip);
}

void SsdModel::StartChip(int chip) {
  Chip& c = chips_[chip];
  if (c.busy || c.queue.empty()) {
    return;
  }
  c.busy = true;
  const SubIo sub = c.queue.front();
  c.queue.pop_front();
  sim_->Schedule(MediaTime(sub), [this, chip, sub] { OnMediaDone(chip, sub); });
}

void SsdModel::OnMediaDone(int chip, SubIo sub) {
  chips_[chip].busy = false;
  if (sub.op == sched::IoOp::kRead) {
    EnqueueChannel(ChannelOfChip(chip), sub);  // Page out over the channel.
  } else {
    FinishSub(sub);  // Program / erase ends at the chip.
  }
  StartChip(chip);
}

void SsdModel::EnqueueChannel(int channel, SubIo sub) {
  channels_[channel].queue.push_back(sub);
  StartChannel(channel);
}

void SsdModel::StartChannel(int channel) {
  Channel& ch = channels_[channel];
  if (ch.busy || ch.queue.empty()) {
    return;
  }
  ch.busy = true;
  const SubIo sub = ch.queue.front();
  ch.queue.pop_front();
  sim_->Schedule(params_.channel_xfer, [this, channel, sub] { OnTransferDone(channel, sub); });
}

void SsdModel::OnTransferDone(int channel, SubIo sub) {
  channels_[channel].busy = false;
  if (sub.op == sched::IoOp::kWrite) {
    EnqueueChip(ChipOfPage(sub.logical_page), sub);  // Now program the page.
  } else {
    FinishSub(sub);  // Read data delivered to the host.
  }
  StartChannel(channel);
}

void SsdModel::FinishSub(const SubIo& sub) {
  if (sub.op != sched::IoOp::kErase) {
    --channels_[ChannelOfChip(ChipOfPage(sub.logical_page))].outstanding;
  }
  sched::IoRequest* parent = sub.parent;
  assert(parent->subs_remaining > 0);
  if (--parent->subs_remaining > 0) {
    return;
  }
  ++completed_;
  // Contract: when a listener is installed it owns completion delivery
  // (including invoking on_complete for requests it does not recognize, e.g.
  // GC traffic). Without a listener we invoke on_complete directly. Either
  // way the callback may release the descriptor, so move it out first.
  if (listener_ != nullptr) {
    listener_(parent);
  } else if (parent->on_complete) {
    auto cb = std::move(parent->on_complete);
    cb(*parent, Status::Ok());
  }
}

SsdGc::SsdGc(sim::Simulator* sim, SsdModel* ssd, const Options& options, uint64_t seed)
    : sim_(sim), ssd_(ssd), options_(options), rng_(seed) {}

void SsdGc::Start() {
  if (running_ || !options_.enabled) {
    return;
  }
  running_ = true;
  ScheduleNext();
}

void SsdGc::Stop() { running_ = false; }

void SsdGc::ScheduleNext() {
  if (!running_) {
    return;
  }
  sim_->ScheduleDaemon(static_cast<DurationNs>(
                     rng_.Exponential(static_cast<double>(options_.mean_interval))),
                 [this] { RunRound(); });
}

void SsdGc::RunRound() {
  if (!running_) {
    return;
  }
  ++rounds_;
  const int chip = static_cast<int>(rng_.UniformInt(0, ssd_->num_chips() - 1));
  // Victim-block cleaning: move a few valid pages (read + program on the same
  // chip), then erase the block.
  const int64_t page_size = ssd_->params().page_size;
  auto make_req = [&](sched::IoOp op, int64_t logical_page) {
    sched::IoRequest* req = pool_.Acquire();
    req->id = next_id_++;
    req->op = op;
    req->offset = logical_page * page_size;
    req->size = page_size;
    req->pid = -1;  // Kernel-internal.
    req->on_complete = [this, req](const sched::IoRequest&, Status) {
      pool_.Release(req);
    };
    return req;
  };

  // Logical pages congruent to `chip` mod num_chips() land on this chip.
  const int64_t stride = ssd_->num_chips();
  const int64_t base = rng_.UniformInt(0, 1'000'000) * stride + chip;
  for (int i = 0; i < options_.pages_moved; ++i) {
    ssd_->Submit(make_req(sched::IoOp::kRead, base + i * stride));
    ssd_->Submit(make_req(sched::IoOp::kWrite, base + (i + 1000) * stride));
  }
  ssd_->Submit(make_req(sched::IoOp::kErase, base));
  ScheduleNext();
}

}  // namespace mitt::device
