// Rotational-disk model with an SSTF-reordering device queue.
//
// This is the ground truth the MittNoop/MittCFQ predictors must approximate.
// The service-time model follows classic disk characterization work
// ([48, 49] in the paper): a seek component that grows with distance (with a
// sublinear short-seek term), a uniformly distributed rotational-latency
// component, and a size-proportional transfer component, plus small
// multiplicative jitter. The device queue reorders pending IOs by SSTF, which
// the paper found its target disk to use (Appendix A).
//
// Writes can be absorbed by capacitor-backed NVRAM (§7.8.6): they are
// acknowledged at NVRAM latency and destaged to the platters in the
// background, still consuming head time (and thus still producing contention
// for readers).

#ifndef MITTOS_DEVICE_DISK_MODEL_H_
#define MITTOS_DEVICE_DISK_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sched/io_pool.h"
#include "src/sched/io_request.h"
#include "src/sim/simulator.h"

namespace mitt::device {

struct DiskParams {
  int64_t capacity_bytes = 1'000LL * 1024 * 1024 * 1024;  // ~1 TB.
  size_t queue_depth = 32;                                // NCQ depth.

  // Seek cost from offset x to y over d = |gb(y) - gb(x)|:
  //   seek = seek_base + seek_per_gb * d + seek_sqrt_coeff * sqrt(d).
  DurationNs seek_base = Micros(2500);
  DurationNs seek_per_gb = Micros(3);
  DurationNs seek_sqrt_coeff = Micros(60);

  // Rotational latency: uniform in [0, rotational_max] per mechanical IO.
  DurationNs rotational_max = Millis(2);

  // Sequential transfer: ~160 MB/s -> ~6.1 us per KiB.
  DurationNs transfer_per_kb = 6'100;

  // Multiplicative service-time jitter, uniform in [1-j, 1+j].
  double jitter = 0.02;

  // Anti-starvation aging for the SSTF queue: an IO waiting longer than this
  // is served ahead of nearer IOs (real NCQ firmware bounds starvation the
  // same way; without it a competing tenant's far-away IOs could starve
  // forever behind a stream of near-head IOs).
  DurationNs max_starvation = Millis(30);

  // NVRAM write buffering (§7.8.6). When enabled, writes are acknowledged at
  // nvram_latency and destaged in the background.
  bool nvram_writes = true;
  DurationNs nvram_latency = Micros(50);
};

class DiskModel {
 public:
  DiskModel(sim::Simulator* sim, const DiskParams& params, uint64_t seed);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // True if the device queue can absorb another IO.
  bool CanAccept() const;

  // Hands an IO to the device. The caller keeps ownership of the request;
  // the device holds a raw pointer until it reports completion.
  // Requires CanAccept().
  void Submit(sched::IoRequest* req);

  // Invoked for every completed IO (including background destages, which have
  // a null on_complete). The scheduler above uses this to dispatch more IOs.
  void set_completion_listener(std::function<void(sched::IoRequest*)> listener) {
    listener_ = std::move(listener);
  }

  // Invoked whenever device-queue capacity frees up without a user-visible
  // completion (background destages draining). Schedulers use this to keep
  // dispatching; without it a queue full of destages would deadlock them.
  void set_capacity_listener(std::function<void()> listener) {
    capacity_listener_ = std::move(listener);
  }

  // Deterministic expected service time (no jitter, expected rotation) from
  // head position `from` — this is what an oracle predictor would use, and
  // what the profiler (disk_profile) tries to learn by measurement.
  DurationNs ExpectedServiceTime(int64_t from_offset, const sched::IoRequest& io) const;

  // Number of IOs held by the device (queued + in service).
  size_t Occupancy() const { return queue_.size() + (in_service_ != nullptr ? 1 : 0); }
  size_t QueuedCount() const { return queue_.size(); }
  bool idle() const { return in_service_ == nullptr && queue_.empty(); }

  // Pending (not yet in-service) IOs, for O(N) baseline predictors and tests.
  const std::vector<sched::IoRequest*>& queued() const { return queue_; }
  const sched::IoRequest* in_service() const { return in_service_; }
  TimeNs in_service_completion_time() const { return in_service_done_; }

  int64_t head_position() const { return head_pos_; }
  const DiskParams& params() const { return params_; }

  // --- Fail-slow injection (src/fault/) ---
  // Multiplies the *actual* mechanical service time of every IO started while
  // set (sampled at service start, so an in-flight IO keeps its time).
  // ExpectedServiceTime is deliberately NOT scaled: it is the healthy model
  // the profiler learned, so a degrading device drifts away from its
  // predictor exactly the way a real fail-slow disk does.
  void set_service_time_multiplier(double m) { service_multiplier_ = m; }
  double service_time_multiplier() const { return service_multiplier_; }

  // Total IOs completed (including destages), for tests.
  uint64_t completed_count() const { return completed_; }

 private:
  // Picks the queued IO with the smallest seek distance from the head (SSTF)
  // and starts serving it.
  void StartNext();
  void OnServiceDone(sched::IoRequest* req);

  DurationNs SampledServiceTime(int64_t from_offset, const sched::IoRequest& io);
  DurationNs SeekCost(int64_t from_offset, int64_t to_offset) const;

  sim::Simulator* sim_;
  DiskParams params_;
  Rng rng_;
  std::function<void(sched::IoRequest*)> listener_;
  std::function<void()> capacity_listener_;

  std::vector<sched::IoRequest*> queue_;
  sched::IoRequest* in_service_ = nullptr;
  TimeNs in_service_done_ = 0;
  double service_multiplier_ = 1.0;
  int64_t head_pos_ = 0;
  uint64_t completed_ = 0;
  uint64_t destage_seq_ = 0;

  // Background-destage descriptors are pooled: acquired on write submit,
  // released when the destage leaves the head.
  sched::IoRequestPool destage_pool_;
};

}  // namespace mitt::device

#endif  // MITTOS_DEVICE_DISK_MODEL_H_
