#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

namespace mitt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) {
        line += "  ";
      }
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mitt
