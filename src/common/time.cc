#include "src/common/time.h"

#include <cmath>
#include <cstdio>

namespace mitt {

std::string FormatDuration(DurationNs d) {
  char buf[32];
  const double ad = std::abs(static_cast<double>(d));
  if (ad >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  } else if (ad >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMillis(d));
  } else if (ad >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicros(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(d));
  }
  return buf;
}

}  // namespace mitt
