// Simulated-time primitives shared by every MittOS module.
//
// All simulation time is kept as signed 64-bit nanoseconds. The paper's
// quantities span 82 ns (AddrCheck) to hours (EC2 traces), which fits with
// ~292 years of headroom.

#ifndef MITTOS_COMMON_TIME_H_
#define MITTOS_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace mitt {

// A point in simulated time, in nanoseconds since simulation start.
using TimeNs = int64_t;

// A span of simulated time, in nanoseconds.
using DurationNs = int64_t;

constexpr DurationNs kNanosecond = 1;
constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

constexpr DurationNs Micros(int64_t n) { return n * kMicrosecond; }
constexpr DurationNs Millis(int64_t n) { return n * kMillisecond; }
constexpr DurationNs Seconds(int64_t n) { return n * kSecond; }

constexpr double ToMicros(DurationNs d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToMillis(DurationNs d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(DurationNs d) { return static_cast<double>(d) / kSecond; }

// Formats a duration with an auto-selected unit, e.g. "12.3ms" or "820ns".
std::string FormatDuration(DurationNs d);

}  // namespace mitt

#endif  // MITTOS_COMMON_TIME_H_
