// Deterministic random-number generation for the simulation.
//
// Every component that needs randomness owns an Rng seeded from the
// experiment seed, so experiments replay bit-for-bit. The distributions here
// cover everything the noise models and workloads need: uniform, exponential,
// lognormal, Pareto (heavy tails), and Zipfian key popularity (YCSB).

#ifndef MITTOS_COMMON_RNG_H_
#define MITTOS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace mitt {

// xoshiro256** — small, fast, high-quality, and unlike std::mt19937_64 its
// output sequence is stable across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Creates an independent stream; used to give each simulated node its own
  // generator that does not perturb others.
  Rng Fork();

  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Lognormal parameterized by the *underlying* normal's mu/sigma.
  double LogNormal(double mu, double sigma);

  // Standard normal via Box-Muller (no cached spare: keeps replay simple).
  double Normal(double mean, double stddev);

  // Bounded Pareto on [lo, hi] with shape alpha (> 0); heavy-tailed noise.
  double BoundedPareto(double lo, double hi, double alpha);

  // Returns true with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

// Zipfian generator over [0, n) using the YCSB rejection-free method
// (Gray et al.); theta defaults to the YCSB constant 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace mitt

#endif  // MITTOS_COMMON_RNG_H_
