// Small-buffer-optimized, move-only callable wrapper for simulator events.
//
// The simulator schedules tens of millions of closures per experiment;
// std::function both heap-allocates medium captures and must keep its target
// copyable. InlineFunction stores captures up to kInlineBytes directly in the
// object (no allocation on the Schedule->fire path), falls back to the heap
// for oversized captures, and only requires the target to be movable — so
// closures capturing unique_ptr/latency recorders move straight through the
// event pool.
//
// Semantics: move-only, nullable. Moving from an InlineFunction empties it
// (the target is moved out and destroyed, not left engaged), which is what
// lets Simulator::Step move a closure out of a pooled slot and immediately
// recycle the slot.

#ifndef MITTOS_COMMON_INLINE_FUNCTION_H_
#define MITTOS_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mitt {

// Captures up to kInlineBytes live in the object itself. 48 bytes fits the
// common simulator closures (a `this` pointer plus a handful of ints /
// shared_ptr control blocks) while keeping pooled events cache-friendly.
inline constexpr size_t kInlineFunctionBytes = 48;

template <typename Signature>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(fn));
      invoke_ = &InvokeInline<D>;
      manage_ = &ManageInline<D>;
    } else {
      storage_.heap = new D(std::forward<F>(fn));
      invoke_ = &InvokeHeap<D>;
      manage_ = &ManageHeap<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(&storage_, std::forward<Args>(args)...);
  }

  // True if a callable of type D would be stored inline (no heap allocation).
  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineFunctionBytes &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

 private:
  union Storage {
    alignas(std::max_align_t) unsigned char buf[kInlineFunctionBytes];
    void* heap;
  };

  enum class Op { kMoveTo, kDestroy };

  using InvokeFn = R (*)(Storage*, Args&&...);
  using ManageFn = void (*)(Storage* self, Storage* dst, Op);

  template <typename D>
  static R InvokeInline(Storage* s, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(s->buf)))(std::forward<Args>(args)...);
  }
  template <typename D>
  static R InvokeHeap(Storage* s, Args&&... args) {
    return (*static_cast<D*>(s->heap))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void ManageInline(Storage* self, Storage* dst, Op op) {
    D* obj = std::launder(reinterpret_cast<D*>(self->buf));
    if (op == Op::kMoveTo) {
      ::new (static_cast<void*>(dst->buf)) D(std::move(*obj));
    }
    obj->~D();
  }
  template <typename D>
  static void ManageHeap(Storage* self, Storage* dst, Op op) {
    if (op == Op::kMoveTo) {
      dst->heap = self->heap;  // Steal the allocation; no move of D needed.
    } else {
      delete static_cast<D*>(self->heap);
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) {
      return;
    }
    other.manage_(&other.storage_, &storage_, Op::kMoveTo);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(&storage_, nullptr, Op::kDestroy);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace mitt

#endif  // MITTOS_COMMON_INLINE_FUNCTION_H_
