#include "src/common/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace mitt {

namespace {
// First reservation; million-sample runs then double a handful of times
// instead of reallocating dozens of times from a small initial capacity.
constexpr size_t kInitialReserve = 4096;
}  // namespace

void LatencyRecorder::Record(DurationNs latency) {
  if (samples_.empty()) {
    samples_.reserve(kInitialReserve);
    min_ = latency;
    max_ = latency;
  } else {
    if (samples_.size() == samples_.capacity()) {
      samples_.reserve(samples_.capacity() * 2);
    }
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
  }
  samples_.push_back(latency);
  sum_ += static_cast<double>(latency);
  scratch_state_ = ScratchState::kStale;
}

void LatencyRecorder::Clear() {
  samples_.clear();
  scratch_.clear();
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
  scratch_state_ = ScratchState::kStale;
}

void LatencyRecorder::MergeFrom(const LatencyRecorder& other) {
  if (other.samples_.empty()) {
    return;
  }
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sum_ += other.sum_;
  scratch_state_ = ScratchState::kStale;
}

void LatencyRecorder::EnsureCopied() const {
  if (scratch_state_ == ScratchState::kStale) {
    scratch_ = samples_;  // Reuses the scratch buffer's capacity.
    scratch_state_ = ScratchState::kCopied;
  }
}

void LatencyRecorder::EnsureSorted() const {
  EnsureCopied();
  if (scratch_state_ != ScratchState::kSorted) {
    std::sort(scratch_.begin(), scratch_.end());
    scratch_state_ = ScratchState::kSorted;
  }
}

size_t LatencyRecorder::RankIndex(double p) const {
  const auto rank =
      static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1);
}

DurationNs LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  if (p >= 100) {
    return max_;
  }
  const size_t idx = RankIndex(p);
  if (scratch_state_ == ScratchState::kSorted) {
    return scratch_[idx];
  }
  // Single-percentile query: selection beats a full sort. The partitioned
  // scratch stays valid for further selections until the next Record().
  EnsureCopied();
  auto nth = scratch_.begin() + static_cast<std::ptrdiff_t>(idx);
  std::nth_element(scratch_.begin(), nth, scratch_.end());
  return *nth;
}

std::vector<DurationNs> LatencyRecorder::Percentiles(std::span<const double> ps) const {
  std::vector<DurationNs> out(ps.size(), 0);
  if (samples_.empty()) {
    return out;
  }
  EnsureSorted();
  for (size_t i = 0; i < ps.size(); ++i) {
    const double p = ps[i];
    out[i] = p <= 0 ? min_ : (p >= 100 ? max_ : scratch_[RankIndex(p)]);
  }
  return out;
}

double LatencyRecorder::MeanNs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

double LatencyRecorder::FractionBelow(DurationNs threshold) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(scratch_.begin(), scratch_.end(), threshold);
  return static_cast<double>(it - scratch_.begin()) / static_cast<double>(scratch_.size());
}

std::vector<LatencyRecorder::CdfPoint> LatencyRecorder::CdfSeries(size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  const size_t n = scratch_.size();
  // Ranks evenly spaced from 0 (the min — a CDF plot must show where the
  // distribution starts) to n-1 (the max). points=1 degenerates to the low
  // end rather than the old max-only point.
  for (size_t i = 0; i < points; ++i) {
    const size_t idx =
        points == 1 ? 0 : i * (n - 1) / (points - 1);
    out.push_back({scratch_[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

double ReductionPercent(DurationNs mitt, DurationNs other) {
  return ReductionPercent(static_cast<double>(mitt), static_cast<double>(other));
}

double ReductionPercent(double mitt, double other) {
  if (other == 0.0) {
    return 0.0;
  }
  return 100.0 * (other - mitt) / other;
}

}  // namespace mitt

