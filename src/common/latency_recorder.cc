#include "src/common/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mitt {

void LatencyRecorder::Record(DurationNs latency) {
  samples_.push_back(latency);
  sorted_valid_ = false;
}

void LatencyRecorder::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

DurationNs LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  if (p <= 0) {
    return sorted_.front();
  }
  if (p >= 100) {
    return sorted_.back();
  }
  const auto rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

DurationNs LatencyRecorder::Min() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return sorted_.front();
}

DurationNs LatencyRecorder::Max() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return sorted_.back();
}

double LatencyRecorder::MeanNs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::FractionBelow(DurationNs threshold) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<LatencyRecorder::CdfPoint> LatencyRecorder::CdfSeries(size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const auto idx = static_cast<size_t>(frac * static_cast<double>(sorted_.size() - 1));
    out.push_back({sorted_[idx], frac});
  }
  return out;
}

double ReductionPercent(DurationNs mitt, DurationNs other) {
  return ReductionPercent(static_cast<double>(mitt), static_cast<double>(other));
}

double ReductionPercent(double mitt, double other) {
  if (other == 0.0) {
    return 0.0;
  }
  return 100.0 * (other - mitt) / other;
}

}  // namespace mitt
