#include "src/common/status.h"

namespace mitt {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kEbusy:
      return "EBUSY";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExhausted:
      return "DEADLINE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace mitt
