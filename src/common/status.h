// Error-code based status handling (no exceptions), in the spirit of
// absl::Status but specialized for the MittOS interface: EBUSY is a
// first-class, *expected* outcome of an SLO-aware IO, not an error.

#ifndef MITTOS_COMMON_STATUS_H_
#define MITTOS_COMMON_STATUS_H_

#include <cstdint>
#include <string_view>

namespace mitt {

enum class StatusCode : uint8_t {
  kOk = 0,
  // The OS predicts the IO's SLO cannot be met; the caller should fail over.
  kEbusy = 1,
  kNotFound = 2,
  kTimeout = 3,
  kInvalidArgument = 4,
  kCancelled = 5,
  kUnavailable = 6,
  kInternal = 7,
  // A deadline-budget get ran out of SLO before any replica answered: the
  // remaining budget clamped to zero (see resilience::DeadlineBudget).
  // Distinct from kTimeout so callers can tell "the budget accounting said
  // stop" from "a per-attempt timer fired".
  kDeadlineExhausted = 8,
};

std::string_view StatusCodeName(StatusCode code);

// Lightweight value-type status. Copyable, trivially destructible.
class Status {
 public:
  constexpr Status() : code_(StatusCode::kOk) {}
  constexpr explicit Status(StatusCode code) : code_(code) {}

  static constexpr Status Ok() { return Status(StatusCode::kOk); }
  static constexpr Status Ebusy() { return Status(StatusCode::kEbusy); }
  static constexpr Status NotFound() { return Status(StatusCode::kNotFound); }
  static constexpr Status Timeout() { return Status(StatusCode::kTimeout); }
  static constexpr Status InvalidArgument() { return Status(StatusCode::kInvalidArgument); }
  static constexpr Status Cancelled() { return Status(StatusCode::kCancelled); }
  static constexpr Status Unavailable() { return Status(StatusCode::kUnavailable); }
  static constexpr Status Internal() { return Status(StatusCode::kInternal); }
  static constexpr Status DeadlineExhausted() { return Status(StatusCode::kDeadlineExhausted); }

  constexpr bool ok() const { return code_ == StatusCode::kOk; }
  constexpr bool busy() const { return code_ == StatusCode::kEbusy; }
  constexpr StatusCode code() const { return code_; }

  constexpr bool operator==(const Status& other) const { return code_ == other.code_; }

  std::string_view name() const { return StatusCodeName(code_); }

 private:
  StatusCode code_;
};

}  // namespace mitt

#endif  // MITTOS_COMMON_STATUS_H_
