// Growable power-of-two ring-buffer FIFO.
//
// std::deque allocates a new node every ~512 bytes of growth and frees it on
// drain, so a FIFO that oscillates around a block boundary churns the heap on
// every push/pop cycle. The IO pipeline's dispatch queues (noop scheduler,
// SSD chip/channel sub-IO queues) do exactly that at steady state. RingQueue
// keeps one contiguous power-of-two array: pushes and pops are index
// arithmetic, capacity only ever grows, and the steady state performs zero
// allocations.

#ifndef MITTOS_COMMON_RING_QUEUE_H_
#define MITTOS_COMMON_RING_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace mitt {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  void reserve(size_t n) {
    if (n > slots_.size()) {
      Grow(PowerOfTwoAtLeast(n));
    }
  }

  void push_back(T value) {
    if (count_ == slots_.size()) {
      Grow(slots_.empty() ? kInitialCapacity : slots_.size() * 2);
    }
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(value);
    ++count_;
  }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void pop_front() {
    slots_[head_] = T{};  // Drop owned resources eagerly.
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  void clear() {
    while (!empty()) {
      pop_front();
    }
  }

 private:
  static constexpr size_t kInitialCapacity = 16;

  static size_t PowerOfTwoAtLeast(size_t n) {
    size_t p = kInitialCapacity;
    while (p < n) {
      p *= 2;
    }
    return p;
  }

  void Grow(size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace mitt

#endif  // MITTOS_COMMON_RING_QUEUE_H_
