#include "src/common/rng.h"

#include <cmath>
#include <mutex>
#include <vector>

namespace mitt {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used for seeding state from a single 64-bit seed.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// Zeta is a pure function but O(n); a fleet-scale trial builds thousands of
// client workloads over the same multi-million-key keyspace, and without the
// cache the harmonic scans dominate trial setup. Duplicate computation under
// the race window is harmless (both threads store the identical value).
double ZetaCached(uint64_t n, double theta) {
  struct Entry {
    uint64_t n;
    double theta;
    double zeta;
  };
  static std::mutex mu;
  static std::vector<Entry> cache;
  {
    const std::lock_guard<std::mutex> lock(mu);
    for (const Entry& e : cache) {
      if (e.n == n && e.theta == theta) {
        return e.zeta;
      }
    }
  }
  const double zeta = Zeta(n, theta);
  const std::lock_guard<std::mutex> lock(mu);
  for (const Entry& e : cache) {
    if (e.n == n && e.theta == theta) {
      return e.zeta;
    }
  }
  cache.push_back({n, theta, zeta});
  return zeta;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  zeta2theta_ = Zeta(2, theta);
  zetan_ = ZetaCached(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                       std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace mitt
