// Minimal aligned-column ASCII table printer used by the benchmark harnesses
// to print paper-style tables and CDF series.

#ifndef MITTOS_COMMON_TABLE_H_
#define MITTOS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace mitt {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with columns padded to their widest cell, separated by two spaces,
  // with a dashed rule under the header.
  std::string ToString() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mitt

#endif  // MITTOS_COMMON_TABLE_H_
