// Latency sample collection and percentile/CDF reporting.
//
// The paper reports almost everything as latency CDFs and percentile
// reductions ("pY" notation, §7). LatencyRecorder keeps exact samples (the
// experiments here are at most a few million IOs), and computes percentiles,
// means, CDF series, and the paper's "% latency reduction" metric
// (footnote 2: (T_other - T_mitt) / T_other).
//
// Query cost model: Min/Max/MeanNs are O(1) (tracked incrementally in
// Record). A single Percentile() query on fresh samples uses
// std::nth_element — O(n), no full sort. Rank-ordered queries (CdfSeries,
// FractionBelow) sort once and reuse the sorted copy until the next Record.

#ifndef MITTOS_COMMON_LATENCY_RECORDER_H_
#define MITTOS_COMMON_LATENCY_RECORDER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace mitt {

class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  void Record(DurationNs latency);
  void Clear();

  // Appends every sample from `other` (sharded harvest: per-shard recorders
  // merged in shard order, so the combined sample sequence is deterministic).
  void MergeFrom(const LatencyRecorder& other);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Percentile in [0, 100]; p=50 is the median, p=100 the max. Returns 0 when
  // empty. Uses nearest-rank on the sorted samples.
  DurationNs Percentile(double p) const;

  // Batch variant: sorts the scratch once and answers every percentile from
  // the sorted copy — one O(n log n) pass instead of one O(n) nth_element
  // per query. Results are element-for-element identical to calling
  // Percentile() on each entry. Returns zeros when empty.
  std::vector<DurationNs> Percentiles(std::span<const double> ps) const;

  DurationNs Min() const { return samples_.empty() ? 0 : min_; }
  DurationNs Max() const { return samples_.empty() ? 0 : max_; }
  double MeanNs() const;

  // Fraction of samples <= threshold (the CDF evaluated at `threshold`).
  double FractionBelow(DurationNs threshold) const;

  // Returns `points` (x=latency, y=cumulative fraction) pairs evenly spaced
  // in rank from the minimum sample to the maximum, suitable for printing a
  // CDF series the way the paper plots them. The first point is always the
  // low end (points=1 returns just the minimum), the last always the max;
  // fractions are the true CDF values (i.e. (rank+1)/count) of the chosen
  // samples.
  struct CdfPoint {
    DurationNs latency;
    double fraction;
  };
  std::vector<CdfPoint> CdfSeries(size_t points) const;

  const std::vector<DurationNs>& samples() const { return samples_; }

 private:
  // Lifecycle of the scratch buffer: kStale (out of date with samples_) ->
  // kCopied (fresh copy, possibly nth_element-partitioned) -> kSorted.
  enum class ScratchState { kStale, kCopied, kSorted };

  void EnsureCopied() const;
  void EnsureSorted() const;
  size_t RankIndex(double p) const;  // Nearest-rank index for p in (0, 100).

  std::vector<DurationNs> samples_;
  DurationNs min_ = 0;
  DurationNs max_ = 0;
  double sum_ = 0.0;
  mutable std::vector<DurationNs> scratch_;
  mutable ScratchState scratch_state_ = ScratchState::kStale;
};

// The paper's latency-reduction metric, in percent:
//   100 * (other - mitt) / other.
// Returns 0 when `other` is 0.
double ReductionPercent(DurationNs mitt, DurationNs other);
double ReductionPercent(double mitt, double other);

}  // namespace mitt

#endif  // MITTOS_COMMON_LATENCY_RECORDER_H_
